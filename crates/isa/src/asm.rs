//! A small two-pass textual assembler.
//!
//! Syntax (one instruction per line, `;` or `#` start a comment):
//!
//! ```text
//!     li   r1, 0
//! loop:
//!     ld   r2, 8(r1)        ; word load, base+offset
//!     addi r1, r1, 8
//!     beq  r2, r0, skip
//!     add  r3, r3, r2
//! skip:
//!     blt  r1, r4, loop
//!     halt
//! ```
//!
//! Branch/jump targets may be labels or absolute instruction indices,
//! so the [`crate::disasm`] output re-assembles bit-identically.
//!
//! Pseudo-instructions (each expands to one real instruction):
//! `mov rd, rs` · `inc r` · `dec r` · `clr r` · `neg rd, rs` ·
//! `not rd, rs` · `beqz r, target` · `bnez r, target`.

use crate::inst::{AluOp, Cond, FpOp, Inst, Reg};
use crate::Program;
use std::collections::HashMap;

/// Assembler failure, with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let body = t
        .strip_prefix('r')
        .or_else(|| t.strip_prefix('R'))
        .ok_or_else(|| err(line, format!("expected register, got `{t}`")))?;
    let n: u32 = body
        .parse()
        .map_err(|_| err(line, format!("bad register `{t}`")))?;
    if n >= crate::NUM_LOGICAL_REGS as u32 {
        return Err(err(line, format!("register out of range `{t}`")));
    }
    Ok(n as Reg)
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, body) = match t.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, t),
    };
    let v: i64 = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate `{t}`")))?
    } else {
        body.parse()
            .map_err(|_| err(line, format!("bad immediate `{t}`")))?
    };
    Ok(if neg { -v } else { v })
}

/// `off(rN)` memory operand.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| err(line, format!("expected off(reg), got `{t}`")))?;
    if !t.ends_with(')') {
        return Err(err(line, format!("expected off(reg), got `{t}`")));
    }
    let off_s = &t[..open];
    let reg_s = &t[open + 1..t.len() - 1];
    let off = if off_s.is_empty() {
        0
    } else {
        parse_imm(off_s, line)?
    };
    Ok((off, parse_reg(reg_s, line)?))
}

enum Target {
    Label(String),
    Abs(u32),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, AsmError> {
    let t = tok.trim();
    if t.is_empty() {
        return Err(err(line, "missing branch target"));
    }
    if t.chars().all(|c| c.is_ascii_digit()) {
        Ok(Target::Abs(t.parse().map_err(|_| err(line, "bad target"))?))
    } else {
        Ok(Target::Label(t.to_string()))
    }
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "seq" => AluOp::Seq,
        "sne" => AluOp::Sne,
        "sge" => AluOp::Sge,
        _ => return None,
    })
}

fn fp_op(m: &str) -> Option<FpOp> {
    Some(match m {
        "fadd" => FpOp::Fadd,
        "fsub" => FpOp::Fsub,
        "fmul" => FpOp::Fmul,
        "fdiv" => FpOp::Fdiv,
        _ => return None,
    })
}

fn br_cond(m: &str) -> Option<Cond> {
    Some(match m {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "ble" => Cond::Le,
        "bgt" => Cond::Gt,
        _ => return None,
    })
}

enum Pending {
    Done(Inst),
    Br {
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        target: Target,
    },
    Jmp {
        target: Target,
    },
}

/// Assemble `src` into a [`Program`] named `name`.
pub fn assemble(name: &str, src: &str) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut pendings: Vec<(usize, Pending)> = Vec::new();

    for (lineno0, raw) in src.lines().enumerate() {
        let line = lineno0 + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Leading labels, possibly several on one line.
        while let Some(colon) = text.find(':') {
            let (lab, rest) = text.split_at(colon);
            let lab = lab.trim();
            if lab.is_empty()
                || !lab
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(err(line, format!("bad label `{lab}`")));
            }
            if labels
                .insert(lab.to_string(), pendings.len() as u32)
                .is_some()
            {
                return Err(err(line, format!("duplicate label `{lab}`")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let nops = |want: usize| -> Result<(), AsmError> {
            if ops.len() != want {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {want} operands, got {}", ops.len()),
                ))
            } else {
                Ok(())
            }
        };

        let m = mnemonic.to_ascii_lowercase();
        let pending = if let Some(op) = alu_op(&m) {
            nops(3)?;
            Pending::Done(Inst::Alu {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                rs2: parse_reg(ops[2], line)?,
            })
        } else if let Some(op) = m.strip_suffix('i').and_then(alu_op) {
            nops(3)?;
            Pending::Done(Inst::AluImm {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: parse_imm(ops[2], line)?,
            })
        } else if let Some(op) = fp_op(&m) {
            nops(3)?;
            Pending::Done(Inst::Fp {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                rs2: parse_reg(ops[2], line)?,
            })
        } else if let Some(cond) = br_cond(&m) {
            nops(3)?;
            Pending::Br {
                cond,
                rs1: parse_reg(ops[0], line)?,
                rs2: parse_reg(ops[1], line)?,
                target: parse_target(ops[2], line)?,
            }
        } else {
            match m.as_str() {
                "li" => {
                    nops(2)?;
                    Pending::Done(Inst::Li {
                        rd: parse_reg(ops[0], line)?,
                        imm: parse_imm(ops[1], line)?,
                    })
                }
                "mov" => {
                    nops(2)?;
                    Pending::Done(Inst::Alu {
                        op: AluOp::Add,
                        rd: parse_reg(ops[0], line)?,
                        rs1: parse_reg(ops[1], line)?,
                        rs2: 0,
                    })
                }
                // Pseudo-instructions expanding to one real instruction.
                "inc" => {
                    nops(1)?;
                    let r = parse_reg(ops[0], line)?;
                    Pending::Done(Inst::AluImm {
                        op: AluOp::Add,
                        rd: r,
                        rs1: r,
                        imm: 1,
                    })
                }
                "dec" => {
                    nops(1)?;
                    let r = parse_reg(ops[0], line)?;
                    Pending::Done(Inst::AluImm {
                        op: AluOp::Sub,
                        rd: r,
                        rs1: r,
                        imm: 1,
                    })
                }
                "clr" => {
                    nops(1)?;
                    let r = parse_reg(ops[0], line)?;
                    Pending::Done(Inst::Alu {
                        op: AluOp::Xor,
                        rd: r,
                        rs1: r,
                        rs2: r,
                    })
                }
                "neg" => {
                    nops(2)?;
                    Pending::Done(Inst::Alu {
                        op: AluOp::Sub,
                        rd: parse_reg(ops[0], line)?,
                        rs1: 0,
                        rs2: parse_reg(ops[1], line)?,
                    })
                }
                "not" => {
                    nops(2)?;
                    Pending::Done(Inst::AluImm {
                        op: AluOp::Xor,
                        rd: parse_reg(ops[0], line)?,
                        rs1: parse_reg(ops[1], line)?,
                        imm: -1,
                    })
                }
                // Zero-comparing branch aliases.
                "beqz" => {
                    nops(2)?;
                    Pending::Br {
                        cond: Cond::Eq,
                        rs1: parse_reg(ops[0], line)?,
                        rs2: 0,
                        target: parse_target(ops[1], line)?,
                    }
                }
                "bnez" => {
                    nops(2)?;
                    Pending::Br {
                        cond: Cond::Ne,
                        rs1: parse_reg(ops[0], line)?,
                        rs2: 0,
                        target: parse_target(ops[1], line)?,
                    }
                }
                "ld" => {
                    nops(2)?;
                    let (offset, base) = parse_mem(ops[1], line)?;
                    Pending::Done(Inst::Ld {
                        rd: parse_reg(ops[0], line)?,
                        base,
                        offset,
                    })
                }
                "st" => {
                    nops(2)?;
                    let (offset, base) = parse_mem(ops[1], line)?;
                    Pending::Done(Inst::St {
                        src: parse_reg(ops[0], line)?,
                        base,
                        offset,
                    })
                }
                "jmp" => {
                    nops(1)?;
                    Pending::Jmp {
                        target: parse_target(ops[0], line)?,
                    }
                }
                "jr" => {
                    nops(1)?;
                    Pending::Done(Inst::Jr {
                        rs1: parse_reg(ops[0], line)?,
                    })
                }
                "halt" => {
                    nops(0)?;
                    Pending::Done(Inst::Halt)
                }
                "nop" => {
                    nops(0)?;
                    Pending::Done(Inst::Nop)
                }
                _ => return Err(err(line, format!("unknown mnemonic `{mnemonic}`"))),
            }
        };
        pendings.push((line, pending));
    }

    let resolve = |t: &Target, line: usize| -> Result<u32, AsmError> {
        match t {
            Target::Abs(a) => Ok(*a),
            Target::Label(l) => labels
                .get(l)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{l}`"))),
        }
    };

    let mut insts = Vec::with_capacity(pendings.len());
    for (line, p) in &pendings {
        insts.push(match p {
            Pending::Done(i) => *i,
            Pending::Br {
                cond,
                rs1,
                rs2,
                target,
            } => Inst::Br {
                cond: *cond,
                rs1: *rs1,
                rs2: *rs2,
                target: resolve(target, *line)?,
            },
            Pending::Jmp { target } => Inst::Jmp {
                target: resolve(target, *line)?,
            },
        });
    }

    let prog = Program::from_insts(name, insts);
    if let Err(pc) = prog.validate() {
        return Err(err(
            0,
            format!("instruction {pc} targets outside the program"),
        ));
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disasm;

    #[test]
    fn assembles_the_paper_example() {
        // Figure 1 of the paper, transliterated to this ISA: counts the
        // zero/non-zero elements of a[0..100] and accumulates the sum.
        let src = r#"
            li   r1, 0          ; I1: index
            li   r2, 0          ; I2: non-zero count
            li   r3, 0          ; I3: zero count
            li   r4, 0          ; I4: sum
            li   r5, 1000       ; &a
            li   r6, 800        ; 100 elements * 8 bytes
        loop:
            add  r7, r5, r1
            ld   r0, 0(r7)      ; placeholder (overwritten below)
            ld   r8, 0(r7)      ; I5: LD R0, a[R1]
            bne  r8, r0, then   ; I7 inverted: BE else
            addi r3, r3, 1      ; I10: INC R3
            jmp  ip
        then:
            addi r2, r2, 1      ; I8: INC R2
        ip:
            add  r4, r4, r8     ; I11: ADD R4, R4, R0
            addi r1, r1, 8      ; I12
            blt  r1, r6, loop   ; I13/I14
            halt
        "#;
        let p = assemble("fig1", src).expect("assembles");
        assert_eq!(p.name, "fig1");
        assert!(p.validate().is_ok());
        // The `jmp ip` must point at the add after `then:`+1.
        let jmp = p
            .insts
            .iter()
            .find_map(|i| {
                if let Inst::Jmp { target } = i {
                    Some(*target)
                } else {
                    None
                }
            })
            .unwrap();
        assert!(matches!(
            p.insts[jmp as usize],
            Inst::Alu {
                op: AluOp::Add,
                rd: 4,
                ..
            }
        ));
    }

    #[test]
    fn labels_on_own_line_and_inline() {
        let p = assemble("t", "a:\n b: nop\n jmp a\n jmp b\n halt").unwrap();
        assert_eq!(p.insts[1], Inst::Jmp { target: 0 });
        assert_eq!(p.insts[2], Inst::Jmp { target: 0 });
    }

    #[test]
    fn numeric_targets_accepted() {
        let p = assemble("t", "nop\njmp 0\nhalt").unwrap();
        assert_eq!(p.insts[1], Inst::Jmp { target: 0 });
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("t", "li r1, 0x10\naddi r2, r1, -3\nhalt").unwrap();
        assert_eq!(p.insts[0], Inst::Li { rd: 1, imm: 16 });
        assert_eq!(
            p.insts[1],
            Inst::AluImm {
                op: AluOp::Add,
                rd: 2,
                rs1: 1,
                imm: -3
            }
        );
    }

    #[test]
    fn mem_operands() {
        let p = assemble("t", "ld r1, -8(r2)\nst r3, (r4)\nhalt").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Ld {
                rd: 1,
                base: 2,
                offset: -8
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::St {
                src: 3,
                base: 4,
                offset: 0
            }
        );
    }

    #[test]
    fn mov_is_add_with_r0() {
        let p = assemble("t", "mov r5, r6\nhalt").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Alu {
                op: AluOp::Add,
                rd: 5,
                rs1: 6,
                rs2: 0
            }
        );
    }

    #[test]
    fn errors_reported_with_line() {
        assert_eq!(assemble("t", "nop\nbogus r1").unwrap_err().line, 2);
        assert_eq!(assemble("t", "li r64, 0").unwrap_err().line, 1);
        assert_eq!(assemble("t", "jmp nowhere").unwrap_err().line, 1);
        assert!(assemble("t", "add r1, r2")
            .unwrap_err()
            .msg
            .contains("expects 3"));
        assert!(assemble("t", "a: nop\na: nop")
            .unwrap_err()
            .msg
            .contains("duplicate"));
    }

    #[test]
    fn disasm_round_trips() {
        let src = r#"
            li r1, -42
            addi r2, r1, 0x7f
            mul r3, r2, r2
            fdiv r4, r3, r2
            ld r5, 16(r3)
            st r5, -16(r3)
            beq r5, r0, 8
            jmp 0
            jr r5
            sltu r6, r5, r1
            halt
            nop
        "#;
        let p = assemble("rt", src).unwrap();
        let text: String = p.insts.iter().map(|i| disasm(i) + "\n").collect();
        let p2 = assemble("rt", &text).unwrap();
        assert_eq!(p.insts, p2.insts);
    }

    #[test]
    fn pseudo_instructions_expand() {
        let p = assemble(
            "t",
            "inc r3\ndec r4\nclr r5\nneg r6, r7\nnot r8, r9\nbeqz r1, 0\nbnez r2, 0\nhalt",
        )
        .unwrap();
        assert_eq!(
            p.insts[0],
            Inst::AluImm {
                op: AluOp::Add,
                rd: 3,
                rs1: 3,
                imm: 1
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::AluImm {
                op: AluOp::Sub,
                rd: 4,
                rs1: 4,
                imm: 1
            }
        );
        assert_eq!(
            p.insts[2],
            Inst::Alu {
                op: AluOp::Xor,
                rd: 5,
                rs1: 5,
                rs2: 5
            }
        );
        assert_eq!(
            p.insts[3],
            Inst::Alu {
                op: AluOp::Sub,
                rd: 6,
                rs1: 0,
                rs2: 7
            }
        );
        assert_eq!(
            p.insts[4],
            Inst::AluImm {
                op: AluOp::Xor,
                rd: 8,
                rs1: 9,
                imm: -1
            }
        );
        assert_eq!(
            p.insts[5],
            Inst::Br {
                cond: Cond::Eq,
                rs1: 1,
                rs2: 0,
                target: 0
            }
        );
        assert_eq!(
            p.insts[6],
            Inst::Br {
                cond: Cond::Ne,
                rs1: 2,
                rs2: 0,
                target: 0
            }
        );
    }

    #[test]
    fn pseudo_semantics_via_emulation_shapes() {
        // `neg` and `not` must produce two's-complement results.
        use crate::inst::AluOp as A;
        assert_eq!(A::Sub.eval(0, 5), (-5i64) as u64);
        assert_eq!(A::Xor.eval(0b1010, u64::MAX), !0b1010u64);
    }

    #[test]
    fn comments_both_styles() {
        let p = assemble("t", "nop ; c1\nnop # c2\nhalt").unwrap();
        assert_eq!(p.len(), 3);
    }
}
