//! Assembled program representation.

use crate::{Inst, INST_BYTES};

/// An assembled program: a word-indexed instruction memory plus an
/// optional name (used for reporting in the benchmark harness).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Program name (e.g. the synthetic benchmark it models).
    pub name: String,
    /// Instruction memory, indexed by instruction PC.
    pub insts: Vec<Inst>,
}

impl Program {
    /// Create an empty named program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// Create from a raw instruction vector.
    pub fn from_insts(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Program {
            name: name.into(),
            insts,
        }
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the program holds no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetch the instruction at `pc`, or `None` past the end.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Byte PC used for predictor indexing (instruction index × 4).
    #[inline]
    pub fn byte_pc(pc: u32) -> u64 {
        pc as u64 * INST_BYTES
    }

    /// Validate static properties: every direct branch/jump target must
    /// be inside the program. Returns the offending PC on failure.
    pub fn validate(&self) -> Result<(), u32> {
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.static_target() {
                if t as usize >= self.insts.len() {
                    return Err(pc as u32);
                }
            }
        }
        Ok(())
    }

    /// Render the whole program as assembly text (one instruction per
    /// line, prefixed with its PC).
    pub fn listing(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::with_capacity(self.insts.len() * 24);
        for (pc, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(s, "{pc:5}: {inst}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond};

    fn prog(insts: Vec<Inst>) -> Program {
        Program::from_insts("t", insts)
    }

    #[test]
    fn fetch_and_len() {
        let p = prog(vec![Inst::Nop, Inst::Halt]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(matches!(p.fetch(0), Some(Inst::Nop)));
        assert!(matches!(p.fetch(1), Some(Inst::Halt)));
        assert!(p.fetch(2).is_none());
    }

    #[test]
    fn byte_pc_is_word_times_four() {
        assert_eq!(Program::byte_pc(0), 0);
        assert_eq!(Program::byte_pc(7), 28);
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let p = prog(vec![
            Inst::Br {
                cond: Cond::Eq,
                rs1: 0,
                rs2: 0,
                target: 5,
            },
            Inst::Halt,
        ]);
        assert_eq!(p.validate(), Err(0));
        let ok = prog(vec![Inst::Jmp { target: 1 }, Inst::Halt]);
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn listing_contains_every_pc() {
        let p = prog(vec![
            Inst::Li { rd: 1, imm: 3 },
            Inst::Alu {
                op: AluOp::Add,
                rd: 2,
                rs1: 1,
                rs2: 1,
            },
            Inst::Halt,
        ]);
        let l = p.listing();
        assert!(l.contains("0:"));
        assert!(l.contains("2:"));
        assert!(l.contains("halt"));
    }
}
