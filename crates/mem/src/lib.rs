//! # cfir-mem
//!
//! The memory-system substrate of the CFIR simulator: set-associative
//! LRU caches and the three-level hierarchy of Table 1 in the paper
//! (Pajuelo et al., IPDPS 2005):
//!
//! | level | size  | assoc | line | hit | next |
//! |-------|-------|-------|------|-----|------|
//! | L1I   | 64 KB | 2     | 64 B | 1   | L2   |
//! | L1D   | 64 KB | 2     | 32 B | 1   | L2   |
//! | L2    | 256 KB| 4     | 32 B | 6   | L3   |
//! | L3    | 2 MB  | 4     | 64 B | 18  | mem (100) |
//!
//! Latency-only model: the hierarchy returns how many cycles an access
//! takes, maintains tag state (LRU, dirty bits, write-backs) and the
//! access counters that Figure 8 of the paper reports. Port arbitration
//! and the wide bus (one access returns a whole line, serving up to 4
//! loads — §2.4.5) are enforced by the core in `cfir-sim`, which is
//! where per-cycle bandwidth lives; this crate supplies the line
//! geometry helpers it needs.

//! ```
//! use cfir_mem::Hierarchy;
//!
//! let mut h = Hierarchy::paper();
//! assert_eq!(h.access_data(0x1000, false), 100, "cold: memory latency");
//! assert_eq!(h.access_data(0x1000, false), 1, "warm: L1 hit");
//! assert_eq!(h.access_data(0x1008, false), 1, "same 32-byte line");
//! ```

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig, WarmCache, WarmWay};
pub use hierarchy::{AccessKind, Hierarchy, HierarchyConfig, WarmHierarchy};
