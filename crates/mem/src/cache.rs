//! A single set-associative, write-back, LRU cache (tags only).

/// Geometry and identity of one cache level.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Human-readable name for reports ("L1D", ...).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp; larger = more recently used.
    stamp: u64,
}

/// One way of warm state as exported for a checkpoint: the tag array
/// contents plus the LRU bookkeeping, without statistics counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmWay {
    /// Line (block) address stored in this way.
    pub tag: u64,
    /// Whether the way holds a line.
    pub valid: bool,
    /// Whether the held line is dirty (write-back pending).
    pub dirty: bool,
    /// LRU stamp; larger = more recently used.
    pub stamp: u64,
}

/// Warm state of a whole cache level: every way (set-major order, as
/// laid out internally) plus the LRU clock the stamps are relative to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmCache {
    /// All ways, `sets * assoc` entries in set-major order.
    pub ways: Vec<WarmWay>,
    /// The LRU clock value at export time.
    pub clock: u64,
}

/// Result of a cache lookup-with-allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Line (block) address of a dirty line evicted to make room.
    pub writeback: Option<u64>,
}

/// Tag-only set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    sets: u64,
    line_shift: u32,
    clock: u64,
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl Cache {
    /// Build a cache from its geometry.
    ///
    /// # Panics
    /// Panics if the line size is not a power of two or the geometry
    /// does not divide evenly.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two() && sets > 0,
            "set count must be a power of two"
        );
        assert_eq!(
            sets * cfg.line_bytes * cfg.assoc as u64,
            cfg.size_bytes,
            "geometry must divide evenly"
        );
        let line_shift = cfg.line_bytes.trailing_zeros();
        Cache {
            ways: vec![Way::default(); (sets * cfg.assoc as u64) as usize],
            sets,
            line_shift,
            cfg,
            clock: 0,
            accesses: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line (block) address of a byte address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_of(&self, line: u64) -> u64 {
        line & (self.sets - 1)
    }

    /// Look up `addr`; on miss, allocate the line (evicting LRU).
    /// `write` marks the line dirty (write-back policy, write-allocate).
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.accesses += 1;
        self.clock += 1;
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let base = (set * self.cfg.assoc as u64) as usize;
        let ways = &mut self.ways[base..base + self.cfg.assoc as usize];

        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            w.stamp = self.clock;
            w.dirty |= write;
            return LookupResult {
                hit: true,
                writeback: None,
            };
        }

        self.misses += 1;
        // Choose victim: first invalid way, else LRU.
        let victim = ways.iter().position(|w| !w.valid).unwrap_or_else(|| {
            ways.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .unwrap()
        });
        let evicted = ways[victim];
        let writeback = if evicted.valid && evicted.dirty {
            self.writebacks += 1;
            Some(evicted.tag)
        } else {
            None
        };
        ways[victim] = Way {
            tag: line,
            valid: true,
            dirty: write,
            stamp: self.clock,
        };
        LookupResult {
            hit: false,
            writeback,
        }
    }

    /// Probe without allocating or touching LRU state (diagnostics).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let base = (set * self.cfg.assoc as u64) as usize;
        self.ways[base..base + self.cfg.assoc as usize]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Invalidate everything (keeps statistics).
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            *w = Way::default();
        }
    }

    /// Export the warm state (valid lines + LRU ordering) for a
    /// checkpoint. Statistics counters are excluded: warm state
    /// describes the cache *contents*, not how they were produced.
    pub fn export_warm(&self) -> WarmCache {
        WarmCache {
            ways: self
                .ways
                .iter()
                .map(|w| WarmWay {
                    tag: w.tag,
                    valid: w.valid,
                    dirty: w.dirty,
                    stamp: w.stamp,
                })
                .collect(),
            clock: self.clock,
        }
    }

    /// Import warm state previously produced by [`export_warm`],
    /// replacing the current contents. Statistics counters are left
    /// untouched. Panics on a way-count mismatch (checkpoint taken
    /// under a different geometry).
    ///
    /// [`export_warm`]: Cache::export_warm
    pub fn import_warm(&mut self, warm: &WarmCache) {
        assert_eq!(
            warm.ways.len(),
            self.ways.len(),
            "{}: warm-state way count mismatch",
            self.cfg.name
        );
        for (dst, src) in self.ways.iter_mut().zip(warm.ways.iter()) {
            *dst = Way {
                tag: src.tag,
                valid: src.valid,
                dirty: src.dirty,
                stamp: src.stamp,
            };
        }
        self.clock = warm.clock;
    }

    /// Miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 32B lines = 128 B
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: 128,
            assoc: 2,
            line_bytes: 32,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 2);
        assert_eq!(c.line_addr(0), 0);
        assert_eq!(c.line_addr(31), 0);
        assert_eq!(c.line_addr(32), 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(8, false).hit, "same line hits");
        assert_eq!(c.misses, 1);
        assert_eq!(c.accesses, 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.access(0, false); // line 0
        c.access(64, false); // line 2
        c.access(0, false); // touch line 0 -> line 2 is now LRU
        c.access(128, false); // line 4 evicts line 2
        assert!(c.probe(0), "line 0 must survive (recently used)");
        assert!(!c.probe(64), "line 2 was LRU and must be evicted");
        assert!(c.probe(128));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty line 0
        c.access(64, false); // line 2
        let r = c.access(128, false); // evicts line 0 (LRU, dirty)
        assert_eq!(r.writeback, Some(0));
        assert_eq!(c.writebacks, 1);
        // Clean eviction reports none.
        let r = c.access(192, false); // set 0 again: evicts line 2 (clean)
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_marks_dirty_on_hit_too() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.access(64, false);
        let r = c.access(128, false);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe(0));
        assert_eq!(c.accesses, 0);
        c.access(0, false);
        assert!(c.probe(0));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0, true);
        c.flush();
        assert!(!c.probe(0));
        // After flush, a dirty line must not produce a writeback.
        assert_eq!(c.access(0, false).writeback, None);
    }

    #[test]
    fn warm_state_round_trip_preserves_contents_and_lru() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, false);
        c.access(0, false); // line 0 MRU, line 2 LRU
        let warm = c.export_warm();

        let mut fresh = tiny();
        fresh.import_warm(&warm);
        assert!(fresh.probe(0) && fresh.probe(64));
        // LRU order carried over: allocating into set 0 evicts line 2.
        fresh.access(128, false);
        assert!(fresh.probe(0) && !fresh.probe(64));
        // Dirty bit carried over: evicting line 0 produces a writeback.
        fresh.access(64, false); // evicts line 0 (now LRU, dirty)
        assert_eq!(fresh.writebacks, 1);
        // Stats were not imported.
        assert_eq!(warm.clock, 3);
    }

    #[test]
    #[should_panic(expected = "way count mismatch")]
    fn warm_state_rejects_wrong_geometry() {
        let big = Cache::new(CacheConfig {
            name: "B",
            size_bytes: 256,
            assoc: 2,
            line_bytes: 32,
        });
        let mut c = tiny();
        c.import_warm(&big.export_warm());
    }

    #[test]
    fn paper_l1d_geometry_is_valid() {
        let c = Cache::new(CacheConfig {
            name: "L1D",
            size_bytes: 64 * 1024,
            assoc: 2,
            line_bytes: 32,
        });
        assert_eq!(c.config().sets(), 1024);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        assert_eq!(c.miss_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
