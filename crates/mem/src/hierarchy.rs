//! The three-level hierarchy of Table 1, with instruction and data
//! sides sharing L2/L3.

use crate::cache::{Cache, CacheConfig, WarmCache};

/// What kind of access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Data store (write-allocate into L1D).
    Store,
    /// Instruction fetch.
    Fetch,
}

/// Latencies and geometries for the whole hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Unified L3 geometry.
    pub l3: CacheConfig,
    /// L1 hit latency (cycles).
    pub l1_hit: u32,
    /// L2 hit latency.
    pub l2_hit: u32,
    /// L3 hit latency.
    pub l3_hit: u32,
    /// Main-memory access latency.
    pub mem_lat: u32,
}

impl HierarchyConfig {
    /// The exact configuration of Table 1 in the paper.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                name: "L1I",
                size_bytes: 64 * 1024,
                assoc: 2,
                line_bytes: 64,
            },
            l1d: CacheConfig {
                name: "L1D",
                size_bytes: 64 * 1024,
                assoc: 2,
                line_bytes: 32,
            },
            l2: CacheConfig {
                name: "L2",
                size_bytes: 256 * 1024,
                assoc: 4,
                line_bytes: 32,
            },
            l3: CacheConfig {
                name: "L3",
                size_bytes: 2 * 1024 * 1024,
                assoc: 4,
                line_bytes: 64,
            },
            l1_hit: 1,
            l2_hit: 6,
            l3_hit: 18,
            mem_lat: 100,
        }
    }
}

/// Warm state of the whole hierarchy (all four levels), as captured
/// into a checkpoint and re-injected before a measurement window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmHierarchy {
    /// L1 instruction cache warm state.
    pub l1i: WarmCache,
    /// L1 data cache warm state.
    pub l1d: WarmCache,
    /// Unified L2 warm state.
    pub l2: WarmCache,
    /// Unified L3 warm state.
    pub l3: WarmCache,
}

/// The full hierarchy. Latency-only: `access` returns the cycles the
/// access takes, determined by the first level that hits; lower levels
/// are filled on the way back (inclusive allocation). Dirty evictions
/// are propagated to the next level off the critical path.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Unified L3.
    pub l3: Cache,
    /// Accesses that went all the way to memory.
    pub mem_accesses: u64,
}

impl Hierarchy {
    /// Build from a configuration.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            l3: Cache::new(cfg.l3.clone()),
            cfg,
            mem_accesses: 0,
        }
    }

    /// The paper's hierarchy.
    pub fn paper() -> Self {
        Self::new(HierarchyConfig::paper())
    }

    /// Configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    fn l2_onwards(&mut self, addr: u64, write: bool) -> u32 {
        let r2 = self.l2.access(addr, write);
        if let Some(line) = r2.writeback {
            let wb_addr = line << self.l2.config().line_bytes.trailing_zeros();
            self.l3.access(wb_addr, true);
        }
        if r2.hit {
            return self.cfg.l2_hit;
        }
        let r3 = self.l3.access(addr, false);
        if let Some(_line) = r3.writeback {
            self.mem_accesses += 1; // dirty L3 line written to memory
        }
        if r3.hit {
            self.cfg.l3_hit
        } else {
            self.mem_accesses += 1;
            self.cfg.mem_lat
        }
    }

    /// Unified entry point dispatching on the access kind.
    pub fn access(&mut self, kind: AccessKind, addr: u64) -> u32 {
        match kind {
            AccessKind::Load => self.access_data(addr, false),
            AccessKind::Store => self.access_data(addr, true),
            AccessKind::Fetch => self.access_inst(addr),
        }
    }

    /// Perform a data access; returns its latency in cycles.
    pub fn access_data(&mut self, addr: u64, write: bool) -> u32 {
        let r1 = self.l1d.access(addr, write);
        if let Some(line) = r1.writeback {
            let wb_addr = line << self.l1d.config().line_bytes.trailing_zeros();
            self.l2.access(wb_addr, true);
        }
        if r1.hit {
            self.cfg.l1_hit
        } else {
            self.l2_onwards(addr, false)
        }
    }

    /// Perform an instruction fetch access; returns its latency.
    pub fn access_inst(&mut self, addr: u64) -> u32 {
        let r1 = self.l1i.access(addr, false);
        if r1.hit {
            self.cfg.l1_hit
        } else {
            self.l2_onwards(addr, false)
        }
    }

    /// Export the warm state of all four levels for a checkpoint.
    pub fn export_warm(&self) -> WarmHierarchy {
        WarmHierarchy {
            l1i: self.l1i.export_warm(),
            l1d: self.l1d.export_warm(),
            l2: self.l2.export_warm(),
            l3: self.l3.export_warm(),
        }
    }

    /// Import warm state previously produced by [`export_warm`] into
    /// all four levels. Statistics counters are left untouched.
    ///
    /// [`export_warm`]: Hierarchy::export_warm
    pub fn import_warm(&mut self, warm: &WarmHierarchy) {
        self.l1i.import_warm(&warm.l1i);
        self.l1d.import_warm(&warm.l1d);
        self.l2.import_warm(&warm.l2);
        self.l3.import_warm(&warm.l3);
    }

    /// L1D line size in bytes (needed by the wide-bus arbitration and
    /// the store-coherence range checks in the core).
    #[inline]
    pub fn l1d_line_bytes(&self) -> u64 {
        self.l1d.config().line_bytes
    }

    /// L1D line address of a byte address.
    #[inline]
    pub fn l1d_line(&self, addr: u64) -> u64 {
        self.l1d.line_addr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies_walk_the_levels() {
        let mut h = Hierarchy::paper();
        assert_eq!(h.access_data(0, false), 100, "cold: memory");
        assert_eq!(h.access_data(0, false), 1, "now L1 hit");
        assert_eq!(h.access_data(8, false), 1, "same 32B line");
        assert_eq!(
            h.access_data(32, false),
            18,
            "next 32B line misses L1/L2 but hits the 64B L3 line"
        );
        assert_eq!(
            h.access_data(64, false),
            100,
            "next 64B line is cold everywhere"
        );
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = Hierarchy::paper();
        h.access_data(0, false);
        // L1D is 64KB 2-way with 32B lines: set count 1024, set stride 32KB.
        // Two more lines mapping to set 0 evict line 0 from L1 but not L2.
        h.access_data(32 * 1024, false);
        h.access_data(2 * 32 * 1024, false);
        let lat = h.access_data(0, false);
        assert_eq!(lat, 6, "L1 miss, L2 hit");
    }

    #[test]
    fn inst_side_uses_l1i() {
        let mut h = Hierarchy::paper();
        assert_eq!(h.access_inst(0), 100);
        assert_eq!(h.access_inst(4), 1, "same 64B line");
        assert_eq!(h.l1i.accesses, 2);
        assert_eq!(h.l1d.accesses, 0);
    }

    #[test]
    fn mem_access_counter() {
        let mut h = Hierarchy::paper();
        h.access_data(0, false);
        h.access_data(4096, false);
        assert_eq!(h.mem_accesses, 2);
        h.access_data(0, false);
        assert_eq!(h.mem_accesses, 2);
    }

    #[test]
    fn line_helpers() {
        let h = Hierarchy::paper();
        assert_eq!(h.l1d_line_bytes(), 32);
        assert_eq!(h.l1d_line(31), 0);
        assert_eq!(h.l1d_line(32), 1);
    }

    #[test]
    fn unified_access_dispatches_by_kind() {
        let mut h = Hierarchy::paper();
        assert_eq!(h.access(AccessKind::Load, 0), 100);
        assert_eq!(h.access(AccessKind::Load, 0), 1);
        assert_eq!(
            h.access(AccessKind::Fetch, 0),
            6,
            "I-side misses its own L1 but hits the unified L2 the load filled"
        );
        h.access(AccessKind::Store, 64);
        assert_eq!(h.l1d.writebacks, 0);
        assert!(h.l1d.probe(64));
    }

    #[test]
    fn warm_state_round_trip_reproduces_latencies() {
        let mut h = Hierarchy::paper();
        for i in 0..256u64 {
            h.access_data(i * 40, i % 5 == 0);
            h.access_inst(i * 8);
        }
        let warm = h.export_warm();
        let mut fresh = Hierarchy::paper();
        fresh.import_warm(&warm);
        // Both hierarchies must now answer identically.
        for i in 0..256u64 {
            assert_eq!(
                fresh.access_data(i * 40, false),
                h.access_data(i * 40, false),
                "data access {i}"
            );
            assert_eq!(fresh.access_inst(i * 8), h.access_inst(i * 8));
        }
    }

    #[test]
    fn dirty_l1_eviction_reaches_l2() {
        let mut h = Hierarchy::paper();
        h.access_data(0, true); // dirty in L1
        h.access_data(32 * 1024, false);
        h.access_data(2 * 32 * 1024, false); // evicts dirty line 0 -> L2 write
                                             // L2 should now have the line dirty; verify no panic and stats move.
        assert!(h.l1d.writebacks >= 1);
    }
}
