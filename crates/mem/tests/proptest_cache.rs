//! Property tests: the set-associative cache against a naive reference
//! model (a per-set LRU list), over random access streams.

use cfir_mem::{Cache, CacheConfig};
use proptest::prelude::*;

/// Naive reference: per set, a most-recent-first vector of
/// (line, dirty) pairs bounded by the associativity.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize, line_bytes: u64) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    /// Returns (hit, writeback line).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (_, d) = set.remove(pos);
            set.insert(0, (line, d || write));
            return (true, None);
        }
        let mut wb = None;
        if set.len() == self.assoc {
            let (victim, dirty) = set.pop().unwrap();
            if dirty {
                wb = Some(victim);
            }
        }
        set.insert(0, (line, write));
        (false, wb)
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(
        accesses in prop::collection::vec((0u64..4096, any::<bool>()), 1..400),
    ) {
        // 2 sets x 2 ways x 32B: tiny enough that evictions are common.
        let mut dut = Cache::new(CacheConfig {
            name: "T",
            size_bytes: 128,
            assoc: 2,
            line_bytes: 32,
        });
        let mut reference = RefCache::new(2, 2, 32);
        for &(addr, write) in &accesses {
            let r = dut.access(addr, write);
            let (hit, wb) = reference.access(addr, write);
            prop_assert_eq!(r.hit, hit, "hit mismatch at {:#x}", addr);
            prop_assert_eq!(r.writeback, wb, "writeback mismatch at {:#x}", addr);
        }
        prop_assert_eq!(dut.accesses, accesses.len() as u64);
    }

    #[test]
    fn probe_agrees_with_contents(
        accesses in prop::collection::vec(0u64..2048, 1..200),
        probes in prop::collection::vec(0u64..2048, 1..50),
    ) {
        let mut dut = Cache::new(CacheConfig {
            name: "T",
            size_bytes: 256,
            assoc: 2,
            line_bytes: 32,
        });
        let mut reference = RefCache::new(4, 2, 32);
        for &a in &accesses {
            dut.access(a, false);
            reference.access(a, false);
        }
        for &p in &probes {
            let line = p >> 5;
            let present = reference.sets[(line & 3) as usize]
                .iter()
                .any(|&(l, _)| l == line);
            prop_assert_eq!(dut.probe(p), present, "probe {:#x}", p);
        }
    }

    #[test]
    fn miss_count_bounded_by_distinct_lines_when_no_conflicts(
        lines in prop::collection::vec(0u64..8, 1..100),
    ) {
        // 8 lines fit entirely in a 8-way fully-associative-equivalent
        // cache (1 set x 8 ways): every line misses exactly once.
        let mut dut = Cache::new(CacheConfig {
            name: "T",
            size_bytes: 256,
            assoc: 8,
            line_bytes: 32,
        });
        for &l in &lines {
            dut.access(l * 32, false);
        }
        let distinct = lines.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert_eq!(dut.misses as usize, distinct);
    }
}
