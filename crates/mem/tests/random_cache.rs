//! Randomized tests: the set-associative cache against a naive
//! reference model (a per-set LRU list), over seeded random access
//! streams.

use cfir_mem::{Cache, CacheConfig};
use cfir_obs::Rng64;

/// Naive reference: per set, a most-recent-first vector of
/// (line, dirty) pairs bounded by the associativity.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize, line_bytes: u64) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    /// Returns (hit, writeback line).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let line = addr >> self.line_shift;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (_, d) = set.remove(pos);
            set.insert(0, (line, d || write));
            return (true, None);
        }
        let mut wb = None;
        if set.len() == self.assoc {
            let (victim, dirty) = set.pop().unwrap();
            if dirty {
                wb = Some(victim);
            }
        }
        set.insert(0, (line, write));
        (false, wb)
    }
}

#[test]
fn cache_matches_reference_lru() {
    let mut rng = Rng64::seed_from_u64(0xCAC4E);
    for _ in 0..40 {
        let n = rng.gen_range(1, 400) as usize;
        let accesses: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.gen_range(0, 4096), rng.gen_bool(0.5)))
            .collect();
        // 2 sets x 2 ways x 32B: tiny enough that evictions are common.
        let mut dut = Cache::new(CacheConfig {
            name: "T",
            size_bytes: 128,
            assoc: 2,
            line_bytes: 32,
        });
        let mut reference = RefCache::new(2, 2, 32);
        for &(addr, write) in &accesses {
            let r = dut.access(addr, write);
            let (hit, wb) = reference.access(addr, write);
            assert_eq!(r.hit, hit, "hit mismatch at {addr:#x}");
            assert_eq!(r.writeback, wb, "writeback mismatch at {addr:#x}");
        }
        assert_eq!(dut.accesses, accesses.len() as u64);
    }
}

#[test]
fn probe_agrees_with_contents() {
    let mut rng = Rng64::seed_from_u64(0x9204E);
    for _ in 0..40 {
        let n = rng.gen_range(1, 200) as usize;
        let accesses: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 2048)).collect();
        let np = rng.gen_range(1, 50) as usize;
        let probes: Vec<u64> = (0..np).map(|_| rng.gen_range(0, 2048)).collect();
        let mut dut = Cache::new(CacheConfig {
            name: "T",
            size_bytes: 256,
            assoc: 2,
            line_bytes: 32,
        });
        let mut reference = RefCache::new(4, 2, 32);
        for &a in &accesses {
            dut.access(a, false);
            reference.access(a, false);
        }
        for &p in &probes {
            let line = p >> 5;
            let present = reference.sets[(line & 3) as usize]
                .iter()
                .any(|&(l, _)| l == line);
            assert_eq!(dut.probe(p), present, "probe {p:#x}");
        }
    }
}

#[test]
fn miss_count_bounded_by_distinct_lines_when_no_conflicts() {
    let mut rng = Rng64::seed_from_u64(0x315);
    for _ in 0..40 {
        let n = rng.gen_range(1, 100) as usize;
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 8)).collect();
        // 8 lines fit entirely in a 1-set x 8-way cache: every line
        // misses exactly once.
        let mut dut = Cache::new(CacheConfig {
            name: "T",
            size_bytes: 256,
            assoc: 8,
            line_bytes: 32,
        });
        for &l in &lines {
            dut.access(l * 32, false);
        }
        let distinct = lines.iter().collect::<std::collections::HashSet<_>>().len();
        assert_eq!(dut.misses as usize, distinct);
    }
}
