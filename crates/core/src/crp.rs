//! CRP — Current Re-convergent Point register (§2.3.1, §2.3.2).
//!
//! Holds the PC of the estimated re-convergent point of the most recent
//! mispredicted hard branch, an `R` (reached) flag, and a 64-bit mask
//! of logical registers written since the branch was fetched (wrong
//! path included, via the NRBQ OR) and before the re-convergent point.
//!
//! After the re-convergent point is reached, an instruction whose
//! source registers all have clear mask bits is *control independent*.
//! Destinations of non-CI instructions keep setting mask bits so the
//! taint closes over the dataflow; destinations of CI instructions do
//! not (their values are unchanged by the misprediction).

/// The CRP register.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crp {
    /// Whether a re-convergent point is currently being tracked.
    pub active: bool,
    /// PC of the estimated re-convergent point.
    pub rcp: u32,
    /// `R` flag: the re-convergent point has been fetched.
    pub reached: bool,
    /// Written-register mask.
    pub mask: u64,
    /// Identifier of the misprediction event that activated the CRP
    /// (used for the Figure 5 classification).
    pub event: u64,
}

impl Crp {
    /// Fresh, inactive register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Activate for a new misprediction: `rcp` from the heuristic,
    /// `initial_mask` from ORing the NRBQ, `event` for attribution.
    pub fn activate(&mut self, rcp: u32, initial_mask: u64, event: u64) {
        *self = Crp {
            active: true,
            rcp,
            reached: false,
            mask: initial_mask,
            event,
        };
    }

    /// Deactivate (e.g. replaced by a newer misprediction).
    pub fn deactivate(&mut self) {
        self.active = false;
    }

    /// Called for every fetched instruction; sets `R` when the
    /// re-convergent point arrives. Returns the (possibly just set)
    /// reached flag.
    #[inline]
    pub fn on_fetch(&mut self, pc: u32) -> bool {
        if self.active && !self.reached && pc == self.rcp {
            self.reached = true;
        }
        self.active && self.reached
    }

    /// Whether an instruction reading `sources` would be control
    /// independent right now (must be called only when `reached`).
    #[inline]
    pub fn is_control_independent(&self, sources: [Option<u8>; 2]) -> bool {
        if !(self.active && self.reached) {
            return false;
        }
        sources
            .iter()
            .flatten()
            .all(|&r| self.mask & (1u64 << r) == 0)
    }

    /// Record the destination write of a decoded instruction.
    /// Before the RCP every write taints; after it, only non-CI
    /// instructions taint.
    #[inline]
    pub fn on_dest_write(&mut self, reg: u8, instruction_is_ci: bool) {
        if !self.active {
            return;
        }
        if !self.reached || !instruction_is_ci {
            self.mask |= 1u64 << reg;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut c = Crp::new();
        assert!(!c.active);
        c.activate(0x20, 0b1010, 7);
        assert!(c.active);
        assert!(!c.reached);
        assert_eq!(c.mask, 0b1010);
        assert_eq!(c.event, 7);
        assert!(!c.on_fetch(0x10));
        assert!(c.on_fetch(0x20), "RCP fetch sets R");
        assert!(c.on_fetch(0x24), "stays reached");
        c.deactivate();
        assert!(!c.on_fetch(0x20));
    }

    #[test]
    fn ci_test_needs_reached() {
        let mut c = Crp::new();
        c.activate(0x20, 0, 0);
        assert!(!c.is_control_independent([None, None]), "not reached yet");
        c.on_fetch(0x20);
        assert!(c.is_control_independent([None, None]));
    }

    #[test]
    fn ci_test_checks_source_bits() {
        let mut c = Crp::new();
        c.activate(0x20, (1 << 3) | (1 << 5), 0);
        c.on_fetch(0x20);
        assert!(c.is_control_independent([Some(1), Some(2)]));
        assert!(!c.is_control_independent([Some(3), None]));
        assert!(!c.is_control_independent([Some(1), Some(5)]));
        assert!(
            c.is_control_independent([Some(0), None]),
            "r0 never tainted"
        );
    }

    #[test]
    fn writes_before_rcp_always_taint() {
        let mut c = Crp::new();
        c.activate(0x20, 0, 0);
        c.on_dest_write(4, true); // "CI" claim irrelevant before RCP
        c.on_fetch(0x20);
        assert!(!c.is_control_independent([Some(4), None]));
    }

    #[test]
    fn post_rcp_ci_writes_do_not_taint() {
        let mut c = Crp::new();
        c.activate(0x20, 0, 0);
        c.on_fetch(0x20);
        c.on_dest_write(4, true); // CI instruction writing r4
        assert!(c.is_control_independent([Some(4), None]));
        c.on_dest_write(6, false); // non-CI instruction writing r6
        assert!(!c.is_control_independent([Some(6), None]));
    }

    #[test]
    fn inactive_ignores_writes() {
        let mut c = Crp::new();
        c.on_dest_write(4, false);
        c.activate(0x20, 0, 0);
        c.on_fetch(0x20);
        assert!(c.is_control_independent([Some(4), None]));
    }
}
