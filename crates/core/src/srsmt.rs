//! SRSMT — Scalar Register Set Map Table (§2.3.3, Figure 6).
//!
//! One entry per vectorized instruction, indexed by PC. An entry owns
//! the *set of registers* (or speculative-memory positions) holding the
//! replica results, the `decode`/`commit` counters that drive
//! validation, the `seq1`/`seq2` identifiers of the source operands,
//! the DAEC early-release counter (§2.4.2) and the address `Range` used
//! by the store-coherence check (§2.4.3).
//!
//! ## Replica window
//!
//! The paper dispatches a set of `Nregs` replicas and, "when the last
//! replica is validated, another set of multiple speculative instances
//! of the instruction are dispatched again". We model that as a
//! *sliding window* over the (unbounded) stream of future dynamic
//! instances of the vectorized instruction:
//!
//! * every replica carries an absolute **instance index** `k` (0 for
//!   the first dynamic instance after vectorization); its result lives
//!   in slot `k % Nregs`;
//! * `head` — instances pre-executed so far (replicas exist for
//!   `decode..head`); grows whenever fewer than `Nregs` results are
//!   outstanding and a destination register can be allocated;
//! * `decode` — next instance a validation will consume ("which is the
//!   next replica to be validated", incremented when a dynamic instance
//!   of the instruction enters the decode stage);
//! * `commit` — next instance whose validating instruction will commit
//!   ("the last replica that has been committed"); committing frees the
//!   slot's storage, which lets `head` grow again — the re-dispatch of
//!   the next set.
//!
//! On a misprediction recovery, `decode` is pulled back to `commit`
//! (§2.4.4) — the replicas themselves are *not* squashed, so the
//! re-fetched control-independent instructions find their precomputed
//! values still present. That is the mechanism's entire point.
//!
//! The replica *execution* engine lives in `cfir-sim`; this module owns
//! the architectural state machine.

use cfir_isa::Inst;

/// Identifier of a replica's destination storage: a physical register
/// (monolithic mode) or a speculative-memory position (§2.4.6 mode).
/// Interpreted by the pipeline that owns the storage.
pub type StorageId = u32;

/// Maximum replicas per instruction (Figure 11 sweeps up to 8).
pub const MAX_REPLICAS: usize = 8;

/// Identifier of a vectorized instruction's source operand (the
/// `seq1`/`seq2` fields of Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqId {
    /// The operand does not exist (single-source instructions).
    None,
    /// The operand is produced by the vectorized instruction at `pc`:
    /// instance `k` of this entry consumes instance `off + k` of the
    /// producer. The generation detects producer teardown.
    Vec {
        /// Producer PC (SRSMT key).
        pc: u64,
        /// Producer generation captured at vectorization time.
        gen: u32,
        /// Producer instance-index offset.
        off: u32,
    },
    /// The operand is a scalar whose value was read at vectorization
    /// time (§2.3.3: "If an operand is scalar, its value is read from
    /// the register file").
    Scalar(u64),
    /// Loop-carried self-dependence (e.g. an accumulator `r += x`):
    /// instance `k` consumes instance `k-1` of *this* entry; instance 0
    /// consumes the creating dynamic instance's own result (the seed).
    SelfLoop,
}

/// What kind of instruction the entry replicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecKind {
    /// A strided load: instance `k` reads `base + stride * (k + 1)`.
    Load {
        /// Stride captured at vectorization time.
        stride: i64,
        /// Address of the dynamic instance that triggered
        /// vectorization (instance "-1").
        base: u64,
    },
    /// An arithmetic/FP/load instruction dependent on vectorized
    /// producers.
    Op,
}

/// One SRSMT entry.
#[derive(Debug, Clone)]
pub struct SrsmtEntry {
    /// PC of the vectorized instruction (full tag).
    pub pc: u64,
    /// The instruction being replicated.
    pub inst: Inst,
    /// Load or dependent op.
    pub kind: VecKind,
    /// Destination storage per slot (`Set of registers`); valid for
    /// slots holding instances in `commit..head`.
    pub regs: [StorageId; MAX_REPLICAS],
    /// Storage generation tags (speculative-memory mode).
    pub reg_gens: [u32; MAX_REPLICAS],
    /// Replica-window size (`Nregs`).
    pub nregs: u8,
    /// Next instance index a validation consumes.
    pub decode: u32,
    /// Next instance index to commit (slots below are recycled).
    pub commit: u32,
    /// Instances pre-executed (replicas exist for `decode..head`).
    pub head: u32,
    /// Replicas currently executing (issued, not finished).
    pub issue: u8,
    /// First source operand identifier.
    pub seq1: SeqId,
    /// Second source operand identifier.
    pub seq2: SeqId,
    /// Dead Association Elimination Counter (§2.4.2).
    pub daec: u8,
    /// Misprediction event that caused this vectorization (Figure 5).
    pub event: Option<u64>,
    /// Bumped on teardown so stale references (in-flight replicas,
    /// waiting validations) can be recognised.
    pub gen: u32,
    /// Whether a validation consumed from this entry since the last
    /// misprediction recovery (drives the DAEC tick; the paper uses
    /// `decode == commit` as the idleness proxy, which mis-fires when
    /// validations retire quickly — see DESIGN.md).
    pub used: bool,
    /// Seed handle for [`SeqId::SelfLoop`] chains: the dynamic sequence
    /// number of the creating instruction, whose result feeds
    /// instance 0's loop-carried input.
    pub seed: u64,
    /// The seed's value once the creating instruction produced it.
    pub seed_value: Option<u64>,
    /// Dynamic sequence number of the instruction whose decode created
    /// this entry. If that instruction is squashed, the entry's
    /// instance numbering no longer lines up with the dynamic
    /// instruction stream and the entry must be torn down.
    pub creator: u64,
    /// Whether the instance numbering is known to be in step with the
    /// dynamic instruction stream. Load entries start out of step (the
    /// creation-time frontier estimate may be off) and synchronise on
    /// the first exact-address validation; a soft miss desynchronises.
    pub synced: bool,
    /// Whether the alignment has been *verified against an actually
    /// executed instance* (a probe). Only confirmed entries may deliver
    /// values; unconfirmed validations execute normally and verify.
    pub confirmed: bool,
    /// Per-slot completion bits.
    complete: u8,
    /// Per-slot dead bits (can never complete / must not be consumed).
    dead: u8,
    /// Per-slot result values (mirrors of the storage contents).
    pub values: [u64; MAX_REPLICAS],
    /// Per-slot effective addresses (loads).
    pub addrs: [u64; MAX_REPLICAS],
}

impl SrsmtEntry {
    /// Fresh entry for a newly vectorized instruction with a window of
    /// `nregs` replicas. Storage is attached per-instance via
    /// [`SrsmtEntry::grow`].
    pub fn new(pc: u64, inst: Inst, kind: VecKind, nregs: u8, seq1: SeqId, seq2: SeqId) -> Self {
        assert!(nregs as usize <= MAX_REPLICAS && nregs > 0);
        SrsmtEntry {
            pc,
            inst,
            kind,
            regs: [0; MAX_REPLICAS],
            reg_gens: [0; MAX_REPLICAS],
            nregs,
            decode: 0,
            commit: 0,
            head: 0,
            issue: 0,
            seq1,
            seq2,
            daec: 0,
            event: None,
            gen: 0,
            used: false,
            seed: 0,
            seed_value: None,
            creator: 0,
            synced: false,
            confirmed: false,
            complete: 0,
            dead: 0,
            values: [0; MAX_REPLICAS],
            addrs: [0; MAX_REPLICAS],
        }
    }

    /// Slot of instance `k`.
    #[inline]
    pub fn slot(&self, k: u32) -> usize {
        (k % self.nregs as u32) as usize
    }

    /// Whether a new instance can be pre-executed (a slot is free).
    #[inline]
    pub fn can_grow(&self) -> bool {
        self.head - self.commit < self.nregs as u32
    }

    /// Claim the next instance index, attaching its destination
    /// storage. Returns the instance index.
    pub fn grow(&mut self, storage: (StorageId, u32)) -> u32 {
        debug_assert!(self.can_grow());
        let k = self.head;
        let s = self.slot(k);
        self.regs[s] = storage.0;
        self.reg_gens[s] = storage.1;
        self.complete &= !(1 << s);
        self.dead &= !(1 << s);
        self.head += 1;
        k
    }

    /// Predicted address of load instance `k`.
    #[inline]
    pub fn load_addr(&self, k: u32) -> Option<u64> {
        match self.kind {
            VecKind::Load { stride, base } => {
                Some(base.wrapping_add((stride as u64).wrapping_mul(k as u64 + 1)))
            }
            VecKind::Op => None,
        }
    }

    /// Whether instance `k`'s replica has completed execution.
    #[inline]
    pub fn is_complete(&self, k: u32) -> bool {
        debug_assert!(k < self.head);
        self.complete & (1 << self.slot(k)) != 0
    }

    /// Whether instance `k`'s replica is dead.
    #[inline]
    pub fn is_dead(&self, k: u32) -> bool {
        debug_assert!(k < self.head);
        self.dead & (1 << self.slot(k)) != 0
    }

    /// Record completion of instance `k` with its value/address.
    pub fn complete_replica(&mut self, k: u32, value: u64, addr: Option<u64>) {
        let s = self.slot(k);
        self.complete |= 1 << s;
        self.values[s] = value;
        if let Some(a) = addr {
            self.addrs[s] = a;
        }
    }

    /// Mark instance `k` dead.
    pub fn kill_replica(&mut self, k: u32) {
        self.dead |= 1 << self.slot(k);
    }

    /// Result value of instance `k` (valid once complete).
    #[inline]
    pub fn value_of(&self, k: u32) -> u64 {
        self.values[self.slot(k)]
    }

    /// Effective address of instance `k` (loads; valid for strided
    /// loads from `grow`, for dependent loads from completion).
    #[inline]
    pub fn addr_of(&self, k: u32) -> u64 {
        self.addrs[self.slot(k)]
    }

    /// The instance the next validation would consume, or `None` when
    /// no pre-executed instance is available / the slot is dead.
    pub fn next_slot(&self) -> Option<u32> {
        let k = self.decode;
        if k < self.head && !self.is_dead(k) {
            Some(k)
        } else {
            None
        }
    }

    /// Consume instance `decode` on a successful validation.
    pub fn advance_decode(&mut self) -> u32 {
        debug_assert!(self.decode < self.head);
        let k = self.decode;
        self.decode += 1;
        self.used = true;
        k
    }

    /// Commit the oldest consumed instance, freeing its slot. Returns
    /// the storage to release.
    pub fn advance_commit(&mut self) -> (StorageId, u32) {
        debug_assert!(self.commit < self.decode, "commit may not pass decode");
        let s = self.slot(self.commit);
        self.commit += 1;
        (self.regs[s], self.reg_gens[s])
    }

    /// Fast-forward past instances `decode..k` that will never be
    /// validated (they belong to dynamic instances that were already in
    /// flight when the entry was created). Requires `decode == commit`
    /// (no validations in flight). The skipped slots are marked dead;
    /// their storage is returned for release.
    pub fn skip_to(&mut self, k: u32) -> Vec<(StorageId, u32)> {
        debug_assert!(
            self.decode == self.commit,
            "cannot skip with validations in flight"
        );
        debug_assert!(k > self.decode && k <= self.head);
        let mut freed = Vec::new();
        for i in self.decode..k.min(self.head) {
            let s = self.slot(i);
            self.dead |= 1 << s;
            freed.push((self.regs[s], self.reg_gens[s]));
        }
        self.decode = k;
        self.commit = k;
        self.used = true;
        freed
    }

    /// Live instances (uncommitted, pre-executed): `commit..head`.
    pub fn live_instances(&self) -> impl Iterator<Item = u32> + '_ {
        self.commit..self.head
    }

    /// Address range `[lo, hi]` covered by live load replicas (§2.4.3's
    /// `Range` field, restricted to slots still holding values). For
    /// stride-triggered loads the addresses are known from creation;
    /// for dependent (Op-kind) loads only completed replicas have
    /// addresses.
    pub fn live_range(&self) -> Option<(u64, u64)> {
        if !self.inst.is_load() {
            return None;
        }
        let strided = matches!(self.kind, VecKind::Load { .. });
        let mut r: Option<(u64, u64)> = None;
        for k in self.commit..self.head {
            if self.is_dead(k) || (!strided && !self.is_complete(k)) {
                continue;
            }
            let a = self.addr_of(k);
            r = Some(match r {
                None => (a, a),
                Some((lo, hi)) => (lo.min(a), hi.max(a)),
            });
        }
        r
    }

    /// Whether the entry may be reclaimed (§2.3.3: `decode == commit`
    /// and `issue == 0`).
    pub fn deallocatable(&self) -> bool {
        self.decode == self.commit && self.issue == 0
    }

    /// Storage ids of instances not yet consumed by a committed
    /// validation (released when the entry is torn down).
    pub fn unconsumed_storage(&self) -> Vec<(StorageId, u32)> {
        (self.commit..self.head)
            .map(|k| {
                let s = self.slot(k);
                (self.regs[s], self.reg_gens[s])
            })
            .collect()
    }
}

/// Outcome of an allocation attempt.
#[derive(Debug)]
pub enum AllocOutcome {
    /// Entry installed at this index; the displaced entry (if any) is
    /// returned so the caller can release its storage.
    Placed {
        /// Index of the new entry.
        idx: usize,
        /// Entry that was evicted to make room.
        evicted: Option<Box<SrsmtEntry>>,
    },
    /// No way free and none deallocatable: the instruction is not
    /// vectorized (§2.3.3).
    Full,
}

/// Statistics the table keeps for the harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SrsmtStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Allocations rejected because the set was full.
    pub alloc_failures: u64,
    /// Entries reclaimed by LRU deallocation.
    pub lru_evictions: u64,
    /// Entries torn down by the DAEC rule.
    pub daec_releases: u64,
    /// Entries killed by the store-coherence check.
    pub store_conflicts: u64,
}

/// The set-associative SRSMT.
#[derive(Debug, Clone)]
pub struct Srsmt {
    ways: Vec<Option<SrsmtEntry>>,
    stamps: Vec<u64>,
    sets: usize,
    assoc: usize,
    clock: u64,
    daec_threshold: u8,
    /// Accumulated statistics.
    pub stats: SrsmtStats,
}

impl Srsmt {
    /// Create a table with `sets` × `assoc` entries and the given DAEC
    /// threshold (2 in the paper).
    pub fn new(sets: usize, assoc: usize, daec_threshold: u8) -> Self {
        assert!(sets.is_power_of_two() && sets > 0 && assoc > 0);
        Srsmt {
            ways: vec![None; sets * assoc],
            stamps: vec![0; sets * assoc],
            sets,
            assoc,
            clock: 0,
            daec_threshold,
            stats: SrsmtStats::default(),
        }
    }

    /// The paper's 4-way × 64-set table with DAEC threshold 2.
    pub fn paper() -> Self {
        Self::new(64, 4, 2)
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Index of the entry for `pc`, if present.
    pub fn find(&self, pc: u64) -> Option<usize> {
        let base = self.set_of(pc) * self.assoc;
        (base..base + self.assoc)
            .find(|&i| self.ways[i].as_ref().map(|e| e.pc == pc).unwrap_or(false))
    }

    /// Shared access to an entry.
    pub fn get(&self, idx: usize) -> Option<&SrsmtEntry> {
        self.ways[idx].as_ref()
    }

    /// Mutable access to an entry; touches LRU.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut SrsmtEntry> {
        self.clock += 1;
        self.stamps[idx] = self.clock;
        self.ways[idx].as_mut()
    }

    /// Try to install `entry`. Uses a free way, else reclaims the LRU
    /// *deallocatable* entry of the set, else fails. The entry receives
    /// a table-unique generation so stale references (replicas, waiting
    /// validations) can never match a re-incarnated entry.
    pub fn alloc(&mut self, mut entry: SrsmtEntry) -> AllocOutcome {
        debug_assert!(self.find(entry.pc).is_none(), "PC already vectorized");
        self.clock += 1;
        entry.gen = self.clock as u32;
        let base = self.set_of(entry.pc) * self.assoc;
        let range = base..base + self.assoc;
        if let Some(i) = range.clone().find(|&i| self.ways[i].is_none()) {
            self.ways[i] = Some(entry);
            self.stamps[i] = self.clock;
            self.stats.allocs += 1;
            return AllocOutcome::Placed {
                idx: i,
                evicted: None,
            };
        }
        let victim = range
            .filter(|&i| self.ways[i].as_ref().unwrap().deallocatable())
            .min_by_key(|&i| self.stamps[i]);
        match victim {
            Some(i) => {
                let old = self.ways[i].take().map(Box::new);
                self.ways[i] = Some(entry);
                self.stamps[i] = self.clock;
                self.stats.allocs += 1;
                self.stats.lru_evictions += 1;
                AllocOutcome::Placed {
                    idx: i,
                    evicted: old,
                }
            }
            None => {
                self.stats.alloc_failures += 1;
                AllocOutcome::Full
            }
        }
    }

    /// Remove the entry at `idx`, returning it so the caller can free
    /// its storage.
    pub fn invalidate(&mut self, idx: usize) -> Option<SrsmtEntry> {
        self.ways[idx].take()
    }

    /// Branch-misprediction recovery (§2.4.4): `decode ← commit` for
    /// every entry — replicas are *not* squashed — and DAEC ticking
    /// (§2.4.2). Entries whose DAEC reaches the threshold are torn
    /// down; they are returned so the caller releases their storage.
    pub fn recovery(&mut self) -> Vec<SrsmtEntry> {
        let mut released = Vec::new();
        for i in 0..self.ways.len() {
            let tear_down = {
                let Some(e) = self.ways[i].as_mut() else {
                    continue;
                };
                if e.used {
                    e.daec = 0;
                } else {
                    e.daec = e.daec.saturating_add(1);
                }
                e.used = false;
                e.decode = e.commit;
                e.daec >= self.daec_threshold && e.issue == 0
            };
            if tear_down {
                self.stats.daec_releases += 1;
                released.push(self.ways[i].take().unwrap());
            }
        }
        released
    }

    /// Store-coherence check (§2.4.3): indices of load entries whose
    /// live replica address range contains `addr`. The caller must
    /// invalidate them and squash the conventional window.
    pub fn store_check(&mut self, addr: u64) -> Vec<usize> {
        let hits: Vec<usize> = self
            .ways
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                let e = w.as_ref()?;
                match e.live_range() {
                    Some((lo, hi)) if lo <= addr && addr <= hi => Some(i),
                    _ => None,
                }
            })
            .collect();
        self.stats.store_conflicts += hits.len() as u64;
        hits
    }

    /// Iterate over valid entries (diagnostics and the replica pump).
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, &SrsmtEntry)> {
        self.ways
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|e| (i, e)))
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::Inst;

    fn load_entry(pc: u64, nregs: u8) -> SrsmtEntry {
        SrsmtEntry::new(
            pc,
            Inst::Ld {
                rd: 1,
                base: 2,
                offset: 0,
            },
            VecKind::Load {
                stride: 8,
                base: 1000,
            },
            nregs,
            SeqId::None,
            SeqId::None,
        )
    }

    fn grown(pc: u64, nregs: u8, n: u32) -> SrsmtEntry {
        let mut e = load_entry(pc, nregs);
        for i in 0..n {
            let k = e.grow((100 + i, 0));
            assert_eq!(k, i);
        }
        e
    }

    #[test]
    fn grow_window_and_slots() {
        let mut e = load_entry(0x40, 4);
        assert!(e.can_grow());
        for i in 0..4 {
            assert_eq!(e.grow((100 + i, 0)), i);
        }
        assert!(!e.can_grow(), "window full at nregs outstanding");
        assert_eq!(e.slot(0), 0);
        assert_eq!(e.slot(5), 1);
        assert_eq!(e.load_addr(0), Some(1008));
        assert_eq!(e.load_addr(3), Some(1032));
    }

    #[test]
    fn validate_commit_recycles_slots() {
        let mut e = grown(0x40, 4, 4);
        e.complete_replica(0, 111, Some(1008));
        assert_eq!(e.next_slot(), Some(0));
        assert_eq!(e.advance_decode(), 0);
        let (reg, _) = e.advance_commit();
        assert_eq!(reg, 100);
        assert!(e.can_grow(), "committed slot frees window space");
        assert_eq!(e.grow((200, 0)), 4, "instance 4 reuses slot 0");
        assert_eq!(e.slot(4), 0);
        assert!(!e.is_complete(4), "recycled slot starts clean");
    }

    #[test]
    fn pending_validation_without_completion() {
        let mut e = grown(0x40, 4, 2);
        // Instance 0 not complete yet: validation may still consume the
        // slot (the validating instruction waits for the value).
        assert_eq!(e.next_slot(), Some(0));
        e.advance_decode();
        assert_eq!(e.next_slot(), Some(1));
    }

    #[test]
    fn next_slot_none_beyond_head() {
        let mut e = grown(0x40, 4, 1);
        e.advance_decode();
        assert_eq!(e.next_slot(), None, "no pre-executed instance left");
    }

    #[test]
    fn dead_slot_blocks_validation() {
        let mut e = grown(0x40, 4, 2);
        e.kill_replica(0);
        assert_eq!(e.next_slot(), None);
    }

    #[test]
    fn skip_to_marks_dead_and_frees() {
        let mut e = grown(0x40, 4, 4);
        let freed = e.skip_to(2);
        assert_eq!(freed.len(), 2);
        assert_eq!(freed[0].0, 100);
        assert_eq!(e.decode, 2);
        assert_eq!(e.commit, 2);
        assert!(e.is_dead(2 - 1));
        assert_eq!(e.next_slot(), Some(2));
        assert!(e.used);
    }

    #[test]
    fn live_range_over_live_loads() {
        let mut e = grown(0x40, 4, 3);
        e.complete_replica(0, 0, Some(1008));
        e.complete_replica(1, 0, Some(1016));
        e.complete_replica(2, 0, Some(1024));
        assert_eq!(e.live_range(), Some((1008, 1024)));
        e.advance_decode();
        e.advance_commit(); // instance 0 gone
        assert_eq!(e.live_range(), Some((1016, 1024)));
    }

    #[test]
    fn recovery_copies_commit_into_decode_and_ticks_daec() {
        let mut t = Srsmt::paper();
        let AllocOutcome::Placed { idx, .. } = t.alloc(grown(0x40, 4, 4)) else {
            panic!()
        };
        {
            let e = t.get_mut(idx).unwrap();
            e.advance_decode();
            e.advance_decode();
            e.advance_commit();
        }
        let released = t.recovery();
        assert!(released.is_empty());
        let e = t.get(idx).unwrap();
        assert_eq!(e.decode, 1, "decode pulled back to commit");
        assert_eq!(e.daec, 0, "entry was used since the last recovery");
        assert!(!e.used);
    }

    #[test]
    fn daec_releases_unused_entries_after_two_recoveries() {
        let mut t = Srsmt::paper();
        let AllocOutcome::Placed { .. } = t.alloc(grown(0x40, 4, 4)) else {
            panic!()
        };
        assert!(t.recovery().is_empty(), "first recovery: daec=1");
        let released = t.recovery();
        assert_eq!(released.len(), 1, "second recovery: daec=2 -> release");
        assert_eq!(released[0].pc, 0x40);
        assert_eq!(t.stats.daec_releases, 1);
    }

    #[test]
    fn daec_spares_active_entries() {
        let mut t = Srsmt::paper();
        let AllocOutcome::Placed { idx, .. } = t.alloc(grown(0x40, 4, 4)) else {
            panic!()
        };
        t.recovery();
        // A validation between recoveries keeps the entry alive.
        t.get_mut(idx).unwrap().advance_decode();
        assert!(t.recovery().is_empty());
        // Two idle recoveries in a row release it.
        t.recovery();
        assert_eq!(t.recovery().len() + t.occupancy(), 1);
    }

    #[test]
    fn daec_spares_entries_with_inflight_issue() {
        let mut t = Srsmt::paper();
        let AllocOutcome::Placed { idx, .. } = t.alloc(grown(0x40, 4, 4)) else {
            panic!()
        };
        t.get_mut(idx).unwrap().issue = 1;
        t.recovery();
        assert!(t.recovery().is_empty(), "issue>0 protects the entry");
    }

    #[test]
    fn alloc_find_invalidate() {
        let mut t = Srsmt::paper();
        let AllocOutcome::Placed { idx, evicted } = t.alloc(load_entry(0x40, 4)) else {
            panic!("must place");
        };
        assert!(evicted.is_none());
        assert_eq!(t.find(0x40), Some(idx));
        let e = t.invalidate(idx).unwrap();
        assert_eq!(e.pc, 0x40);
        assert_eq!(t.find(0x40), None);
    }

    #[test]
    fn full_set_with_busy_entries_rejects() {
        let mut t = Srsmt::new(1, 2, 2);
        for pc in [0x00u64, 0x04] {
            let mut e = grown(pc, 2, 1);
            e.advance_decode(); // validation in flight -> not deallocatable
            assert!(matches!(t.alloc(e), AllocOutcome::Placed { .. }));
        }
        assert!(matches!(t.alloc(load_entry(0x08, 2)), AllocOutcome::Full));
        assert_eq!(t.stats.alloc_failures, 1);
    }

    #[test]
    fn lru_reclaims_deallocatable() {
        let mut t = Srsmt::new(1, 2, 2);
        t.alloc(grown(0x00, 2, 2));
        t.alloc(grown(0x04, 2, 2));
        let i0 = t.find(0x00).unwrap();
        let _ = t.get_mut(i0); // touch -> 0x04 becomes LRU
        let AllocOutcome::Placed { evicted, .. } = t.alloc(grown(0x08, 2, 2)) else {
            panic!("must reclaim");
        };
        assert_eq!(evicted.unwrap().pc, 0x04);
        assert!(t.find(0x00).is_some());
    }

    #[test]
    fn store_check_hits_live_ranges() {
        let mut t = Srsmt::paper();
        let AllocOutcome::Placed { idx: a, .. } = t.alloc(grown(0x40, 2, 2)) else {
            panic!()
        };
        let AllocOutcome::Placed { idx: b, .. } = t.alloc(grown(0x44, 2, 2)) else {
            panic!()
        };
        t.get_mut(a).unwrap().complete_replica(0, 0, Some(1000));
        t.get_mut(a).unwrap().complete_replica(1, 0, Some(1008));
        t.get_mut(b).unwrap().complete_replica(0, 0, Some(5000));
        t.get_mut(b).unwrap().complete_replica(1, 0, Some(5008));
        assert_eq!(t.store_check(1004), vec![a]);
        assert_eq!(t.store_check(5000), vec![b]);
        assert!(t.store_check(2000).is_empty());
        assert_eq!(t.stats.store_conflicts, 2);
    }

    #[test]
    fn unconsumed_storage_lists_live_slots() {
        let mut e = grown(0x40, 4, 4);
        e.advance_decode();
        e.advance_commit();
        let un = e.unconsumed_storage();
        assert_eq!(un.len(), 3);
        assert_eq!(un[0].0, 101);
    }
}
