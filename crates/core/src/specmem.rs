//! The speculative data memory of §2.4.6 (Figure 13's `ci-h-N`).
//!
//! A small, cheap memory — "similar to a hierarchical register file" —
//! that holds the values produced by replicas so they do not occupy
//! scalar physical registers. It has 2 write ports from the functional
//! units and 2 read ports toward the register file, and is twice as
//! slow as the register file (2 cycles). Values move to the register
//! file through an explicit *copy* instruction that the core inserts
//! when a validation instruction reaches decode; the per-cycle port
//! accounting is enforced by the pipeline in `cfir-sim`.

/// Identifier of a position in the speculative memory.
pub type SpecPos = u32;

/// The speculative data memory: a value array with a free list and a
/// generation tag per position (so stale references from dead replicas
/// can be detected).
#[derive(Debug, Clone)]
pub struct SpecMem {
    values: Vec<u64>,
    gens: Vec<u32>,
    free: Vec<SpecPos>,
    /// Access latency in cycles (2: "twice slower than the register file").
    pub latency: u32,
    /// High-water mark of allocated positions.
    pub high_water: usize,
    /// Allocation failures (no free position).
    pub alloc_failures: u64,
}

impl SpecMem {
    /// Create a memory with `positions` entries and the given latency.
    pub fn new(positions: usize, latency: u32) -> Self {
        SpecMem {
            values: vec![0; positions],
            gens: vec![0; positions],
            free: (0..positions as u32).rev().collect(),
            latency,
            high_water: 0,
            alloc_failures: 0,
        }
    }

    /// Total positions.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    /// Currently allocated positions.
    pub fn in_use(&self) -> usize {
        self.values.len() - self.free.len()
    }

    /// Allocate a position; returns `(position, generation)` or `None`
    /// when full.
    pub fn alloc(&mut self) -> Option<(SpecPos, u32)> {
        match self.free.pop() {
            Some(p) => {
                self.high_water = self.high_water.max(self.in_use());
                Some((p, self.gens[p as usize]))
            }
            None => {
                self.alloc_failures += 1;
                None
            }
        }
    }

    /// Free a position; bumps its generation so stale readers notice.
    pub fn release(&mut self, pos: SpecPos) {
        debug_assert!(
            !self.free.contains(&pos),
            "double free of spec-mem position"
        );
        self.gens[pos as usize] = self.gens[pos as usize].wrapping_add(1);
        self.free.push(pos);
    }

    /// Write a value (from a functional unit).
    #[inline]
    pub fn write(&mut self, pos: SpecPos, value: u64) {
        self.values[pos as usize] = value;
    }

    /// Read a value if the generation still matches (i.e. the position
    /// has not been recycled since the reference was taken).
    #[inline]
    pub fn read(&self, pos: SpecPos, gen: u32) -> Option<u64> {
        if self.gens[pos as usize] == gen {
            Some(self.values[pos as usize])
        } else {
            None
        }
    }

    /// Read ignoring the generation (for diagnostics).
    #[inline]
    pub fn read_raw(&self, pos: SpecPos) -> u64 {
        self.values[pos as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_release() {
        let mut m = SpecMem::new(4, 2);
        assert_eq!(m.capacity(), 4);
        let (p, g) = m.alloc().unwrap();
        m.write(p, 42);
        assert_eq!(m.read(p, g), Some(42));
        m.release(p);
        assert_eq!(m.read(p, g), None, "stale generation after release");
    }

    #[test]
    fn exhaustion_and_failure_count() {
        let mut m = SpecMem::new(2, 2);
        assert!(m.alloc().is_some());
        assert!(m.alloc().is_some());
        assert!(m.alloc().is_none());
        assert_eq!(m.alloc_failures, 1);
        assert_eq!(m.in_use(), 2);
    }

    #[test]
    fn release_recycles() {
        let mut m = SpecMem::new(1, 2);
        let (p, g0) = m.alloc().unwrap();
        m.release(p);
        let (p2, g1) = m.alloc().unwrap();
        assert_eq!(p, p2);
        assert_ne!(g0, g1);
        m.write(p2, 7);
        assert_eq!(m.read(p2, g1), Some(7));
        assert_eq!(m.read(p2, g0), None);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m = SpecMem::new(8, 2);
        let a = m.alloc().unwrap().0;
        let _b = m.alloc().unwrap().0;
        let _c = m.alloc().unwrap().0;
        m.release(a);
        let _ = m.alloc().unwrap();
        assert_eq!(m.high_water, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_asserts() {
        let mut m = SpecMem::new(2, 2);
        let (p, _) = m.alloc().unwrap();
        m.release(p);
        m.release(p);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn capacity_and_latency_reported() {
        let m = SpecMem::new(768, 2);
        assert_eq!(m.capacity(), 768);
        assert_eq!(m.latency, 2);
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn interleaved_alloc_release_never_aliases_generations() {
        let mut m = SpecMem::new(3, 2);
        let mut live: Vec<(SpecPos, u32, u64)> = Vec::new();
        let mut x = 1u64;
        for step in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            if x.is_multiple_of(3) && !live.is_empty() {
                let (p, g, v) = live.swap_remove((x % live.len() as u64) as usize);
                assert_eq!(m.read(p, g), Some(v), "live value intact before release");
                m.release(p);
                assert_eq!(m.read(p, g), None, "stale after release");
            } else if let Some((p, g)) = m.alloc() {
                m.write(p, step);
                live.push((p, g, step));
            }
        }
        for (p, g, v) in live {
            assert_eq!(m.read(p, g), Some(v));
        }
    }
}
