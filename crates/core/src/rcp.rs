//! Re-convergent point estimation heuristics (§2.3.1, Figure 2).
//!
//! Estimation does not have to be correct — a wrong estimate affects
//! performance only, never correctness — so the heuristics are simple:
//!
//! * **backward branch** (loop-closing): the re-convergent point is the
//!   next sequential instruction after the branch (Figure 2-a);
//! * **forward branch**: inspect the instruction *one location above
//!   the target*. If it is an unconditional forward branch, the code is
//!   an if-then-else hammock and the re-convergent point is that
//!   branch's destination (Figure 2-c); otherwise the code is an
//!   if-then and the re-convergent point is the branch's own target
//!   (Figure 2-b).
//!
//! # Intended scope
//!
//! The heuristic targets compiler-shaped *single-entry single-exit
//! hammocks* (if-then, if-then-else with the `then` side laid out
//! first) and loop-closing backward branches. It inspects at most two
//! instructions and never builds a CFG, so it is exact on those shapes
//! and only those; `crates/analyze` computes the post-dominator-based
//! ground truth and the simulator counts runtime (dis)agreement per
//! branch. Known divergences from the static truth:
//!
//! * arms that never re-join in the program (e.g. both sides `halt`):
//!   the heuristic still names an in-program PC;
//! * side entries into an arm (non-hammock `Complex` shapes): the
//!   post-dominator join may be elsewhere;
//! * backward branches that are *not* loop latches and whose layout
//!   does not match the reversed-hammock pattern below.
//!
//! Two bugs found by the static oracle are fixed here: a backward
//! branch in the last program slot used to return an out-of-range PC
//! (now `None`), and a *reversed hammock* — a branch whose taken
//! target precedes it, i.e. the `else` side is laid out before the
//! branch and closes with a forward `jmp join` immediately above it —
//! used to mis-estimate the fall-through as the re-convergent point
//! (now that closing jump's destination).

use cfir_isa::{Inst, Program};

/// Estimate the re-convergent point of the conditional branch at
/// `branch_pc`. Returns `None` for instructions that are not
/// conditional branches, or for branches with no valid in-program
/// re-convergent candidate (e.g. a backward branch in the last slot).
pub fn estimate(prog: &Program, branch_pc: u32) -> Option<u32> {
    let inst = prog.fetch(branch_pc)?;
    let target = match *inst {
        Inst::Br { target, .. } => target,
        _ => return None,
    };
    if target <= branch_pc {
        // Reversed hammock: the taken side was laid out *before* the
        // branch and its closing forward jump sits immediately above
        // us — both paths meet at that jump's destination.
        if branch_pc >= 1 {
            if let Some(above) = prog.fetch(branch_pc - 1) {
                if above.is_uncond_direct() && above.is_forward_from(branch_pc) {
                    return above.static_target();
                }
            }
        }
        // Backward branch: loop structure, re-converges at fall-through
        // — unless the branch is the last instruction, in which case
        // there is no in-program re-convergent point.
        if (branch_pc as usize) + 1 >= prog.len() {
            return None;
        }
        return Some(branch_pc + 1);
    }
    // Forward branch: look one instruction above the target.
    if target >= 1 {
        let above = target - 1;
        if let Some(i) = prog.fetch(above) {
            if i.is_uncond_direct() && i.is_forward_from(above) {
                // if-then-else: re-converges where the `then` side jumps.
                return i.static_target();
            }
        }
    }
    // if-then: re-converges at the branch target itself.
    Some(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    #[test]
    fn backward_branch_reconverges_at_fallthrough() {
        let p = assemble("t", "top:\n addi r1, r1, 1\n blt r1, r2, top\n halt").unwrap();
        // branch at pc 1, backward -> RCP = 2 (the halt)
        assert_eq!(estimate(&p, 1), Some(2));
    }

    #[test]
    fn if_then_reconverges_at_target() {
        let p = assemble(
            "t",
            r#"
            beq r1, r0, skip   ; 0
            addi r2, r2, 1     ; 1 (then body)
        skip:
            add r3, r3, r2     ; 2
            halt               ; 3
            "#,
        )
        .unwrap();
        assert_eq!(estimate(&p, 0), Some(2));
    }

    #[test]
    fn if_then_else_reconverges_at_join() {
        let p = assemble(
            "t",
            r#"
            beq r1, r0, else_  ; 0
            addi r2, r2, 1     ; 1 (then)
            jmp join           ; 2  <- one above target, uncond forward
        else_:
            addi r3, r3, 1     ; 3 (else)
        join:
            add r4, r4, r2     ; 4
            halt               ; 5
            "#,
        )
        .unwrap();
        assert_eq!(
            estimate(&p, 0),
            Some(4),
            "RCP is the join, not the else head"
        );
    }

    #[test]
    fn paper_figure_1_hammock() {
        // The exact hammock of Figure 1 (I7 branches to else, then-side
        // closes with an unconditional jump to IP).
        let p = assemble(
            "t",
            r#"
            li r1, 0           ; 0  I1
        loop:
            ld r8, 0(r1)       ; 1  I5
            beq r8, r0, else_  ; 2  I7
            addi r2, r2, 1     ; 3  I8 (then: INC R2)
            jmp ip             ; 4  I9
        else_:
            addi r3, r3, 1     ; 5  I10 (else: INC R3)
        ip:
            add r4, r4, r8     ; 6  I11
            addi r1, r1, 8     ; 7  I12
            blt r1, r6, loop   ; 8  I13/I14
            halt               ; 9
            "#,
        )
        .unwrap();
        assert_eq!(
            estimate(&p, 2),
            Some(6),
            "I11 is the re-convergent point of I7"
        );
        assert_eq!(
            estimate(&p, 8),
            Some(9),
            "loop-closing branch re-converges after itself"
        );
    }

    #[test]
    fn backward_jmp_above_target_is_not_a_hammock() {
        // The instruction above the target is an unconditional *backward*
        // jump (e.g. the bottom of an enclosing loop) — must fall back to
        // the if-then rule.
        let p = assemble(
            "t",
            r#"
            nop                ; 0
            jmp 0              ; 1 backward jmp
            beq r1, r0, tgt    ; 2
            nop                ; 3
            jmp 0              ; 4 backward, one above tgt
        tgt:
            halt               ; 5
            "#,
        )
        .unwrap();
        assert_eq!(estimate(&p, 2), Some(5));
    }

    #[test]
    fn non_branch_returns_none() {
        let p = assemble("t", "nop\nhalt").unwrap();
        assert_eq!(estimate(&p, 0), None);
        assert_eq!(estimate(&p, 5), None, "out of range PC");
    }

    #[test]
    fn backward_branch_in_last_slot_has_no_rcp() {
        // Used to return Some(len), an out-of-range PC.
        let p = assemble("t", "top:\n addi r1, r1, 1\n blt r1, r2, top").unwrap();
        assert_eq!(estimate(&p, 1), None);
    }

    #[test]
    fn reversed_hammock_reconverges_at_closing_jump_target() {
        // The `else` side is laid out before the branch; its closing
        // `jmp join` sits immediately above the branch. Used to return
        // the fall-through (4), hiding the conditional `then` side.
        let p = assemble(
            "t",
            r#"
            jmp cond           ; 0
        else_:
            addi r3, r3, 1     ; 1
            jmp join           ; 2  <- one above the branch
        cond:
            beq r1, r0, else_  ; 3  backward taken target
            addi r2, r2, 1     ; 4 (then)
        join:
            add r4, r4, r2     ; 5
            halt               ; 6
            "#,
        )
        .unwrap();
        assert_eq!(estimate(&p, 3), Some(5));
    }

    #[test]
    fn loop_latch_below_backward_jmp_still_uses_fallthrough() {
        // The instruction above the latch is a *backward* jump — the
        // reversed-hammock rule must not fire.
        let p = assemble(
            "t",
            r#"
        top:
            addi r1, r1, 1     ; 0
            jmp top            ; 1 backward jmp (unreachable latch path)
            blt r1, r2, top    ; 2
            halt               ; 3
            "#,
        )
        .unwrap();
        assert_eq!(estimate(&p, 2), Some(3));
    }

    #[test]
    fn branch_to_next_instruction() {
        // Degenerate empty-then hammock: target == pc+1; the inst above
        // the target is the branch itself.
        let p = assemble("t", "beq r1, r0, 1\nhalt").unwrap();
        assert_eq!(estimate(&p, 0), Some(1));
    }
}
