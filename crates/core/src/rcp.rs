//! Re-convergent point estimation heuristics (§2.3.1, Figure 2).
//!
//! Estimation does not have to be correct — a wrong estimate affects
//! performance only, never correctness — so the heuristics are simple:
//!
//! * **backward branch** (loop-closing): the re-convergent point is the
//!   next sequential instruction after the branch (Figure 2-a);
//! * **forward branch**: inspect the instruction *one location above
//!   the target*. If it is an unconditional forward branch, the code is
//!   an if-then-else hammock and the re-convergent point is that
//!   branch's destination (Figure 2-c); otherwise the code is an
//!   if-then and the re-convergent point is the branch's own target
//!   (Figure 2-b).

use cfir_isa::{Inst, Program};

/// Estimate the re-convergent point of the conditional branch at
/// `branch_pc`. Returns `None` for instructions that are not
/// conditional branches or whose target information is unavailable.
pub fn estimate(prog: &Program, branch_pc: u32) -> Option<u32> {
    let inst = prog.fetch(branch_pc)?;
    let target = match *inst {
        Inst::Br { target, .. } => target,
        _ => return None,
    };
    if target <= branch_pc {
        // Backward branch: loop structure, re-converges at fall-through.
        return Some(branch_pc + 1);
    }
    // Forward branch: look one instruction above the target.
    if target >= 1 {
        let above = target - 1;
        if let Some(i) = prog.fetch(above) {
            if i.is_uncond_direct() && i.is_forward_from(above) {
                // if-then-else: re-converges where the `then` side jumps.
                return i.static_target();
            }
        }
    }
    // if-then: re-converges at the branch target itself.
    Some(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfir_isa::assemble;

    #[test]
    fn backward_branch_reconverges_at_fallthrough() {
        let p = assemble("t", "top:\n addi r1, r1, 1\n blt r1, r2, top\n halt").unwrap();
        // branch at pc 1, backward -> RCP = 2 (the halt)
        assert_eq!(estimate(&p, 1), Some(2));
    }

    #[test]
    fn if_then_reconverges_at_target() {
        let p = assemble(
            "t",
            r#"
            beq r1, r0, skip   ; 0
            addi r2, r2, 1     ; 1 (then body)
        skip:
            add r3, r3, r2     ; 2
            halt               ; 3
            "#,
        )
        .unwrap();
        assert_eq!(estimate(&p, 0), Some(2));
    }

    #[test]
    fn if_then_else_reconverges_at_join() {
        let p = assemble(
            "t",
            r#"
            beq r1, r0, else_  ; 0
            addi r2, r2, 1     ; 1 (then)
            jmp join           ; 2  <- one above target, uncond forward
        else_:
            addi r3, r3, 1     ; 3 (else)
        join:
            add r4, r4, r2     ; 4
            halt               ; 5
            "#,
        )
        .unwrap();
        assert_eq!(
            estimate(&p, 0),
            Some(4),
            "RCP is the join, not the else head"
        );
    }

    #[test]
    fn paper_figure_1_hammock() {
        // The exact hammock of Figure 1 (I7 branches to else, then-side
        // closes with an unconditional jump to IP).
        let p = assemble(
            "t",
            r#"
            li r1, 0           ; 0  I1
        loop:
            ld r8, 0(r1)       ; 1  I5
            beq r8, r0, else_  ; 2  I7
            addi r2, r2, 1     ; 3  I8 (then: INC R2)
            jmp ip             ; 4  I9
        else_:
            addi r3, r3, 1     ; 5  I10 (else: INC R3)
        ip:
            add r4, r4, r8     ; 6  I11
            addi r1, r1, 8     ; 7  I12
            blt r1, r6, loop   ; 8  I13/I14
            halt               ; 9
            "#,
        )
        .unwrap();
        assert_eq!(
            estimate(&p, 2),
            Some(6),
            "I11 is the re-convergent point of I7"
        );
        assert_eq!(
            estimate(&p, 8),
            Some(9),
            "loop-closing branch re-converges after itself"
        );
    }

    #[test]
    fn backward_jmp_above_target_is_not_a_hammock() {
        // The instruction above the target is an unconditional *backward*
        // jump (e.g. the bottom of an enclosing loop) — must fall back to
        // the if-then rule.
        let p = assemble(
            "t",
            r#"
            nop                ; 0
            jmp 0              ; 1 backward jmp
            beq r1, r0, tgt    ; 2
            nop                ; 3
            jmp 0              ; 4 backward, one above tgt
        tgt:
            halt               ; 5
            "#,
        )
        .unwrap();
        assert_eq!(estimate(&p, 2), Some(5));
    }

    #[test]
    fn non_branch_returns_none() {
        let p = assemble("t", "nop\nhalt").unwrap();
        assert_eq!(estimate(&p, 0), None);
        assert_eq!(estimate(&p, 5), None, "out of range PC");
    }

    #[test]
    fn branch_to_next_instruction() {
        // Degenerate empty-then hammock: target == pc+1; the inst above
        // the target is the branch itself.
        let p = assemble("t", "beq r1, r0, 1\nhalt").unwrap();
        assert_eq!(estimate(&p, 0), Some(1));
    }
}
