//! Per-misprediction event bookkeeping for the Figure 5 classification.
//!
//! Every *hard-branch* misprediction that activates the CRP opens an
//! event. The event is marked `selected` when at least one control
//! independent instruction passes the mask test, and `reused` when at
//! least one reuse attributed to the event validates successfully.
//! Mispredictions of branches the MBS classifies as easy (or where no
//! CI instruction is found) fall into the "not found" bucket.

/// Final classification of one misprediction (Figure 5's three bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOutcome {
    /// No control-independent instruction was identified (white).
    NotFound,
    /// CI instructions selected but none successfully reused (gray).
    SelectedNoReuse,
    /// At least one CI instruction's precomputed result reused (black).
    Reused,
}

#[derive(Debug, Clone, Copy, Default)]
struct Event {
    selected: bool,
    reused: bool,
}

/// Accumulates events across a simulation.
#[derive(Debug, Clone, Default)]
pub struct EventStats {
    events: Vec<Event>,
    /// All dynamic conditional-branch mispredictions, including those
    /// for which the mechanism was not activated.
    pub total_mispredictions: u64,
}

impl EventStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a misprediction that did *not* open an event (easy
    /// branch). Counts toward the "not found" bucket.
    pub fn mispredict_without_event(&mut self) {
        self.total_mispredictions += 1;
    }

    /// Open an event for a hard-branch misprediction; returns its id.
    pub fn open_event(&mut self) -> u64 {
        self.total_mispredictions += 1;
        self.events.push(Event::default());
        (self.events.len() - 1) as u64
    }

    /// Mark that the event selected at least one CI instruction.
    pub fn mark_selected(&mut self, id: u64) {
        if let Some(e) = self.events.get_mut(id as usize) {
            e.selected = true;
        }
    }

    /// Mark that a reuse attributed to the event validated successfully.
    pub fn mark_reused(&mut self, id: u64) {
        if let Some(e) = self.events.get_mut(id as usize) {
            e.reused = true;
            e.selected = true;
        }
    }

    /// Mark the most recently opened event as reused. Used at commit of
    /// a reused instruction: the misprediction whose recovery the reuse
    /// survived is the most recent one — precomputed results outliving
    /// that squash is precisely what Figure 5's black bars count.
    pub fn mark_reused_current(&mut self) {
        if let Some(e) = self.events.last_mut() {
            e.reused = true;
            e.selected = true;
        }
    }

    /// Outcome of a specific event.
    pub fn outcome(&self, id: u64) -> Option<EventOutcome> {
        self.events.get(id as usize).map(|e| {
            if e.reused {
                EventOutcome::Reused
            } else if e.selected {
                EventOutcome::SelectedNoReuse
            } else {
                EventOutcome::NotFound
            }
        })
    }

    /// Counts over *all* mispredictions:
    /// `(not_found, selected_no_reuse, reused)`. Mispredictions without
    /// an event are "not found".
    pub fn counts(&self) -> (u64, u64, u64) {
        let mut sel = 0u64;
        let mut reu = 0u64;
        for e in &self.events {
            if e.reused {
                reu += 1;
            } else if e.selected {
                sel += 1;
            }
        }
        let nf = self.total_mispredictions - sel - reu;
        (nf, sel, reu)
    }

    /// Fractions of all mispredictions, in Figure 5's order
    /// `(not_found, selected_no_reuse, reused)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let (nf, sel, reu) = self.counts();
        let t = self.total_mispredictions.max(1) as f64;
        (nf as f64 / t, sel as f64 / t, reu as f64 / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_buckets() {
        let mut s = EventStats::new();
        s.mispredict_without_event(); // not found
        let a = s.open_event(); // stays not found
        let b = s.open_event();
        s.mark_selected(b); // selected, no reuse
        let c = s.open_event();
        s.mark_selected(c);
        s.mark_reused(c); // reused
        assert_eq!(s.outcome(a), Some(EventOutcome::NotFound));
        assert_eq!(s.outcome(b), Some(EventOutcome::SelectedNoReuse));
        assert_eq!(s.outcome(c), Some(EventOutcome::Reused));
        assert_eq!(s.counts(), (2, 1, 1));
        assert_eq!(s.total_mispredictions, 4);
    }

    #[test]
    fn reuse_implies_selected() {
        let mut s = EventStats::new();
        let e = s.open_event();
        s.mark_reused(e);
        assert_eq!(s.outcome(e), Some(EventOutcome::Reused));
        assert_eq!(s.counts(), (0, 0, 1));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut s = EventStats::new();
        for i in 0..10 {
            let e = s.open_event();
            if i % 2 == 0 {
                s.mark_selected(e);
            }
            if i % 4 == 0 {
                s.mark_reused(e);
            }
        }
        let (a, b, c) = s.fractions();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        assert_eq!(s.counts(), (5, 2, 3));
    }

    #[test]
    fn mark_reused_current_hits_latest_event() {
        let mut s = EventStats::new();
        let a = s.open_event();
        let b = s.open_event();
        s.mark_reused_current();
        assert_eq!(s.outcome(a), Some(EventOutcome::NotFound));
        assert_eq!(s.outcome(b), Some(EventOutcome::Reused));
        // No events at all: must be a no-op.
        let mut empty = EventStats::new();
        empty.mark_reused_current();
        assert_eq!(empty.counts(), (0, 0, 0));
    }

    #[test]
    fn unknown_event_ids_are_ignored() {
        let mut s = EventStats::new();
        s.mark_selected(99);
        s.mark_reused(99);
        assert_eq!(s.counts(), (0, 0, 0));
        assert_eq!(s.outcome(99), None);
    }

    #[test]
    fn empty_fractions_do_not_divide_by_zero() {
        let s = EventStats::new();
        let (a, b, c) = s.fractions();
        assert_eq!((a, b, c), (0.0, 0.0, 0.0));
    }
}
