//! NRBQ — Not-Retired Branch Queue (§2.3.1, §2.3.2).
//!
//! One entry per in-flight conditional branch, in program order. Each
//! entry carries the branch's estimated re-convergent point and a
//! 64-bit mask recording which logical registers were written *after
//! this branch and before the next one*. On a misprediction the CRP
//! mask is initialised by ORing the masks from the mispredicted branch
//! to the tail (i.e. everything written since the branch was fetched,
//! wrong path included).

use std::collections::VecDeque;

/// One NRBQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NrbqEntry {
    /// Dynamic sequence number of the branch (assigned at rename).
    pub seq: u64,
    /// Static PC of the branch.
    pub pc: u32,
    /// Estimated re-convergent point.
    pub rcp: u32,
    /// Registers written after this branch, before the next one.
    pub mask: u64,
}

/// The bounded queue. When full, new branches are simply not tracked;
/// their register writes accumulate in the current tail, which only
/// makes the CI test more conservative (extra bits set), never wrong.
#[derive(Debug, Clone)]
pub struct Nrbq {
    q: VecDeque<NrbqEntry>,
    cap: usize,
    /// Branches that could not be tracked because the queue was full.
    pub overflows: u64,
}

impl Nrbq {
    /// Create a queue with `cap` entries (16 in the paper).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        Nrbq {
            q: VecDeque::with_capacity(cap),
            cap,
            overflows: 0,
        }
    }

    /// Track a newly decoded conditional branch. The new entry's mask
    /// starts cleared ("when a branch is found, the corresponding mask
    /// is cleared"). Returns whether the branch was tracked.
    pub fn on_branch_decode(&mut self, seq: u64, pc: u32, rcp: u32) -> bool {
        if self.q.len() == self.cap {
            self.overflows += 1;
            return false;
        }
        debug_assert!(
            self.q.back().map(|e| e.seq < seq).unwrap_or(true),
            "seqs must increase"
        );
        self.q.push_back(NrbqEntry {
            seq,
            pc,
            rcp,
            mask: 0,
        });
        true
    }

    /// Record a register write by a newly decoded instruction: sets the
    /// bit in the entry at the tail (the youngest tracked branch).
    #[inline]
    pub fn on_dest_write(&mut self, reg: u8) {
        if let Some(tail) = self.q.back_mut() {
            tail.mask |= 1u64 << reg;
        }
    }

    /// Entry for the branch with dynamic sequence `seq`, if tracked.
    pub fn find(&self, seq: u64) -> Option<&NrbqEntry> {
        self.q.iter().find(|e| e.seq == seq)
    }

    /// OR of the masks from the branch `seq` (inclusive) to the tail.
    /// Used to initialise the CRP mask on a misprediction. If the
    /// branch is untracked, ORs *all* masks (conservative).
    pub fn or_masks_from(&self, seq: u64) -> u64 {
        self.q
            .iter()
            .filter(|e| e.seq >= seq)
            .fold(0u64, |m, e| m | e.mask)
    }

    /// Remove entries for squashed branches (younger than `seq`).
    pub fn squash_younger(&mut self, seq: u64) {
        while let Some(tail) = self.q.back() {
            if tail.seq > seq {
                self.q.pop_back();
            } else {
                break;
            }
        }
    }

    /// Remove entries for retired branches (older than or equal to
    /// `seq`); they are no longer in flight.
    pub fn retire_through(&mut self, seq: u64) {
        while let Some(head) = self.q.front() {
            if head.seq <= seq {
                self.q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of tracked branches.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Clear everything (full pipeline flush).
    pub fn clear(&mut self) {
        self.q.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_accumulate_in_tail_only() {
        let mut q = Nrbq::new(16);
        q.on_branch_decode(1, 0x10, 0x20);
        q.on_dest_write(3);
        q.on_branch_decode(2, 0x30, 0x40);
        q.on_dest_write(5);
        q.on_dest_write(5);
        assert_eq!(q.find(1).unwrap().mask, 1 << 3);
        assert_eq!(q.find(2).unwrap().mask, 1 << 5);
    }

    #[test]
    fn or_masks_from_mispredicted_branch() {
        let mut q = Nrbq::new(16);
        q.on_branch_decode(1, 0, 0);
        q.on_dest_write(1);
        q.on_branch_decode(2, 0, 0);
        q.on_dest_write(2);
        q.on_branch_decode(3, 0, 0);
        q.on_dest_write(3);
        assert_eq!(q.or_masks_from(2), (1 << 2) | (1 << 3));
        assert_eq!(q.or_masks_from(1), (1 << 1) | (1 << 2) | (1 << 3));
        assert_eq!(q.or_masks_from(3), 1 << 3);
    }

    #[test]
    fn untracked_branch_ors_everything() {
        let mut q = Nrbq::new(16);
        q.on_branch_decode(5, 0, 0);
        q.on_dest_write(7);
        // Branch 3 is older than anything tracked; conservative OR.
        assert_eq!(q.or_masks_from(3), 1 << 7);
    }

    #[test]
    fn capacity_overflow_drops_tracking() {
        let mut q = Nrbq::new(2);
        assert!(q.on_branch_decode(1, 0, 0));
        assert!(q.on_branch_decode(2, 0, 0));
        assert!(!q.on_branch_decode(3, 0, 0));
        assert_eq!(q.overflows, 1);
        // Writes after the untracked branch land in entry 2 (conservative).
        q.on_dest_write(9);
        assert_eq!(q.find(2).unwrap().mask, 1 << 9);
    }

    #[test]
    fn squash_younger_pops_tail() {
        let mut q = Nrbq::new(16);
        for s in 1..=4 {
            q.on_branch_decode(s, 0, 0);
        }
        q.squash_younger(2);
        assert_eq!(q.len(), 2);
        assert!(q.find(2).is_some());
        assert!(q.find(3).is_none());
    }

    #[test]
    fn retire_pops_head() {
        let mut q = Nrbq::new(16);
        for s in 1..=4 {
            q.on_branch_decode(s, 0, 0);
        }
        q.retire_through(2);
        assert_eq!(q.len(), 2);
        assert!(q.find(1).is_none());
        assert!(q.find(3).is_some());
    }

    #[test]
    fn writes_with_empty_queue_are_ignored() {
        let mut q = Nrbq::new(4);
        q.on_dest_write(1); // no branch in flight yet
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut q = Nrbq::new(4);
        q.on_branch_decode(1, 0, 0);
        q.clear();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn interleaved_retire_and_squash_keep_order() {
        let mut q = Nrbq::new(8);
        for s in 1..=6 {
            q.on_branch_decode(s, s as u32 * 4, 0);
        }
        q.retire_through(2); // 3,4,5,6 left
        q.squash_younger(4); // 3,4 left
        assert_eq!(q.len(), 2);
        assert!(q.find(3).is_some() && q.find(4).is_some());
        assert!(q.find(2).is_none() && q.find(5).is_none());
        // Writes land in the surviving tail (4).
        q.on_dest_write(9);
        assert_eq!(q.find(4).unwrap().mask, 1 << 9);
        assert_eq!(q.find(3).unwrap().mask, 0);
    }

    #[test]
    fn or_masks_from_future_seq_is_zero() {
        let mut q = Nrbq::new(4);
        q.on_branch_decode(1, 0, 0);
        q.on_dest_write(5);
        assert_eq!(q.or_masks_from(99), 0, "no branch at/after seq 99");
    }
}
