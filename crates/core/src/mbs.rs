//! MBS — Mispredicted Branch Status table (§2.3.1).
//!
//! Indexed by branch PC; 4-way × 64 sets in the paper. Each entry has a
//! 4-bit saturating up/down counter plus the branch's previous outcome:
//!
//! * outcome equal to the previous outcome → count up (taken) or down
//!   (not taken);
//! * outcome different from the previous one → counter reset to the
//!   middle of its range.
//!
//! A branch whose counter sits at the maximum or minimum is *highly
//! biased* (easy to predict) and the CI scheme is not activated for it;
//! anything else is considered hard to predict.

const COUNTER_MAX: u8 = 15;
const COUNTER_MID: u8 = 8;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    counter: u8,
    last_taken: bool,
    valid: bool,
    stamp: u64,
}

/// The MBS table.
#[derive(Debug, Clone)]
pub struct Mbs {
    ways: Vec<Entry>,
    sets: usize,
    assoc: usize,
    clock: u64,
}

impl Mbs {
    /// Create a table with `sets` × `assoc` entries.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0 && assoc > 0);
        Mbs {
            ways: vec![
                Entry {
                    pc: 0,
                    counter: COUNTER_MID,
                    last_taken: false,
                    valid: false,
                    stamp: 0
                };
                sets * assoc
            ],
            sets,
            assoc,
            clock: 0,
        }
    }

    /// The paper's 4-way × 64-set table.
    pub fn paper() -> Self {
        Self::new(64, 4)
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let base = self.set_of(pc) * self.assoc;
        (base..base + self.assoc).find(|&i| self.ways[i].valid && self.ways[i].pc == pc)
    }

    /// Record the resolved direction of the branch at `pc`.
    pub fn observe(&mut self, pc: u64, taken: bool) {
        self.clock += 1;
        if let Some(i) = self.find(pc) {
            let e = &mut self.ways[i];
            if taken == e.last_taken {
                if taken {
                    if e.counter < COUNTER_MAX {
                        e.counter += 1;
                    }
                } else if e.counter > 0 {
                    e.counter -= 1;
                }
            } else {
                e.counter = COUNTER_MID;
            }
            e.last_taken = taken;
            e.stamp = self.clock;
            return;
        }
        let base = self.set_of(pc) * self.assoc;
        let slot = (base..base + self.assoc)
            .min_by_key(|&i| (self.ways[i].valid, self.ways[i].stamp))
            .unwrap();
        self.ways[slot] = Entry {
            pc,
            counter: COUNTER_MID,
            last_taken: taken,
            valid: true,
            stamp: self.clock,
        };
    }

    /// Whether the CI scheme should be activated for the branch at
    /// `pc`: true unless the branch is highly biased. Unknown branches
    /// are not considered hard (no information yet).
    pub fn is_hard(&self, pc: u64) -> bool {
        match self.find(pc) {
            Some(i) => {
                let c = self.ways[i].counter;
                c != 0 && c != COUNTER_MAX
            }
            None => false,
        }
    }

    /// Number of valid entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|e| e.valid).count()
    }

    /// Byte PCs of all valid entries (diagnostics / oracle cross-check:
    /// tags are exact full PCs, so every valid entry must name a real
    /// conditional branch).
    pub fn valid_pcs(&self) -> impl Iterator<Item = u64> + '_ {
        self.ways.iter().filter(|e| e.valid).map(|e| e.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_branch_is_not_hard() {
        let m = Mbs::paper();
        assert!(!m.is_hard(0x40));
    }

    #[test]
    fn strongly_taken_branch_becomes_easy() {
        let mut m = Mbs::paper();
        // First observe allocates at mid; consistent taken outcomes
        // count up to saturation: mid=8 -> needs 7 more to hit 15.
        for _ in 0..16 {
            m.observe(0x40, true);
        }
        assert!(!m.is_hard(0x40), "saturated-taken branch is biased/easy");
    }

    #[test]
    fn strongly_not_taken_branch_becomes_easy() {
        let mut m = Mbs::paper();
        for _ in 0..16 {
            m.observe(0x40, false);
        }
        assert!(!m.is_hard(0x40));
    }

    #[test]
    fn alternating_branch_stays_hard() {
        let mut m = Mbs::paper();
        for i in 0..32 {
            m.observe(0x40, i % 2 == 0);
        }
        assert!(m.is_hard(0x40), "direction changes keep resetting to mid");
    }

    #[test]
    fn new_branch_is_hard_after_first_observation() {
        let mut m = Mbs::paper();
        m.observe(0x40, true);
        // Allocated at mid -> not saturated -> hard.
        assert!(m.is_hard(0x40));
    }

    #[test]
    fn direction_change_resets_a_biased_branch() {
        let mut m = Mbs::paper();
        for _ in 0..16 {
            m.observe(0x40, true);
        }
        assert!(!m.is_hard(0x40));
        m.observe(0x40, false); // flip -> reset to mid
        assert!(m.is_hard(0x40));
    }

    #[test]
    fn lru_replacement() {
        let mut m = Mbs::new(1, 2);
        m.observe(0x00, true);
        m.observe(0x04, true);
        m.observe(0x00, true); // touch
        m.observe(0x08, true); // evicts 0x04
        assert_eq!(m.occupancy(), 2);
        m.observe(0x04, false); // re-allocated at mid
        assert!(m.is_hard(0x04));
    }

    #[test]
    fn counter_floor_and_ceiling() {
        let mut m = Mbs::paper();
        for _ in 0..100 {
            m.observe(0x40, false);
        }
        assert!(!m.is_hard(0x40));
        for _ in 0..100 {
            m.observe(0x40, true);
        }
        assert!(!m.is_hard(0x40));
    }
}
