//! # cfir-core
//!
//! The hardware structures of the control-flow independence (CI)
//! mechanism from *"Control-Flow Independence Reuse via Dynamic
//! Vectorization"* (Pajuelo, González, Valero — IPDPS 2005):
//!
//! * [`Mbs`] — Mispredicted Branch Status table (§2.3.1): a 4-bit
//!   biased/unbiased classifier that gates the mechanism to
//!   hard-to-predict branches.
//! * [`rcp`] — the re-convergent-point estimation heuristics of §2.3.1
//!   (backward branch → fall-through; forward branch → inspect the
//!   instruction one above the target to distinguish if-then from
//!   if-then-else hammocks).
//! * [`Nrbq`] — Not-Retired Branch Queue (§2.3.1/§2.3.2): per in-flight
//!   branch, the estimated re-convergent point and a 64-bit mask of
//!   logical registers written after the branch and before the next one.
//! * [`Crp`] — Current Re-convergent Point register (§2.3.2): RCP PC,
//!   Reached flag and the accumulated write mask used to test whether a
//!   post-RCP instruction is control independent.
//! * [`RenameExt`] — the rename-map extension (§2.3.2/§2.3.3 Fig 7):
//!   per logical register, the propagated strided-load PCs (1/2/4
//!   slots — Figure 4's knob), the V/S vectorized bit and the producer
//!   sequence (PC).
//! * [`Srsmt`] — Scalar Register Set Map Table (§2.3.3 Fig 6): per
//!   vectorized instruction, the set of replica destination registers,
//!   `Nregs`, the `decode`/`commit`/`issue` counters, the `seq1`/`seq2`
//!   source identifiers, the DAEC counter (§2.4.2) and the address
//!   `Range` used by the store-coherence check (§2.4.3).
//! * [`SpecMem`] — the small, slow speculative-data memory of §2.4.6
//!   (the `ci-h-N` configurations of Figure 13).
//! * [`events`] — per-misprediction bookkeeping that produces the
//!   Figure 5 classification (no CI found / selected but no reuse /
//!   at least one reuse).
//! * [`storage`] — the §3.1 extra-hardware byte accounting (39 KB).
//!
//! The replica execution engine itself (dispatching the speculative
//! instances into the issue queue, executing them at low priority, and
//! the validation pipeline) lives in `cfir-sim`, which owns the
//! pipeline these structures plug into.

//! ```
//! use cfir_core::{rcp, Crp, Mbs};
//!
//! // The Figure-1 hammock re-converges at the join:
//! let prog = cfir_isa::assemble("h", r#"
//!     ld  r8, 0(r1)
//!     beq r8, r0, else_
//!     addi r2, r2, 1
//!     jmp ip
//! else_:
//!     addi r3, r3, 1
//! ip:
//!     add r4, r4, r8
//!     halt
//! "#).unwrap();
//! assert_eq!(rcp::estimate(&prog, 1), Some(5), "the join is the RCP");
//!
//! // The MBS keeps the scheme away from biased branches:
//! let mut mbs = Mbs::paper();
//! for _ in 0..16 { mbs.observe(0x40, true); }
//! assert!(!mbs.is_hard(0x40));
//!
//! // And the CRP mask decides control independence:
//! let mut crp = Crp::new();
//! crp.activate(5, 1 << 2 | 1 << 3, 0);
//! crp.on_fetch(5);
//! assert!(crp.is_control_independent([Some(4), Some(8)]));
//! assert!(!crp.is_control_independent([Some(2), None]));
//! ```

pub mod config;
pub mod crp;
pub mod events;
pub mod mbs;
pub mod nrbq;
pub mod rcp;
pub mod rename_ext;
pub mod specmem;
pub mod srsmt;
pub mod storage;

pub use config::MechConfig;
pub use crp::Crp;
pub use events::{EventOutcome, EventStats};
pub use mbs::Mbs;
pub use nrbq::Nrbq;
pub use rename_ext::RenameExt;
pub use specmem::SpecMem;
pub use srsmt::{SeqId, Srsmt, SrsmtEntry, VecKind};
