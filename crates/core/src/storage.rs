//! Extra-hardware storage accounting (§3.1).
//!
//! The paper reports the storage of the mechanism's structures for the
//! evaluated configuration; this module re-derives those numbers from
//! the field widths in Figures 3, 6 and 7 so the Table 1 harness can
//! print them.

use crate::MechConfig;

/// Byte sizes of every added structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// SRSMT bytes (45 B/entry for 4 replicas & 256 registers).
    pub srsmt: usize,
    /// Stride predictor bytes (24 B/entry).
    pub stride: usize,
    /// MBS bytes (8 B/entry).
    pub mbs: usize,
    /// NRBQ bytes (8 B/entry).
    pub nrbq: usize,
    /// CRP bytes (PC + mask).
    pub crp: usize,
    /// Rename-map extension bytes (16 B/entry × 64).
    pub rename_ext: usize,
}

impl StorageReport {
    /// Total extra storage in bytes.
    pub fn total(&self) -> usize {
        self.srsmt + self.stride + self.mbs + self.nrbq + self.crp + self.rename_ext
    }
}

/// Derive the storage of the configuration, following §3.1's
/// arithmetic:
///
/// * SRSMT entry (Figure 6): set-of-registers `replicas × 8` bits,
///   Nregs/decode/commit/issue 2 bits each, seq1+seq2 `2×64`, DAEC 2,
///   Range `2×64`, PC 64 → 45 bytes for 4 replicas.
/// * Stride predictor entry (Figure 3): PC 64 + last addr 64 + stride
///   64 + confidence 2 + S 1 → 24 bytes (rounded as the paper does).
/// * MBS entry: PC tag + 4-bit counter → 8 bytes.
/// * NRBQ entry: 8 bytes. CRP: 8 (PC) + 8 (mask).
/// * Rename extension (Figure 7): 16 bytes × 64 logical registers.
pub fn report(cfg: &MechConfig) -> StorageReport {
    let srsmt_entry_bits = cfg.replicas_per_inst as usize * 8 + 4 * 2 + 2 * 64 + 2 + 2 * 64 + 64;
    // 362 bits for 4 replicas; the paper counts this as 45 bytes
    // (truncating division), which we follow to reproduce its totals.
    let srsmt_entry_bytes = srsmt_entry_bits / 8;
    let stride_entry_bytes = 24; // 64+64+64+2+1 bits rounded up to 3 words
    let mbs_entry_bytes = 8;
    StorageReport {
        srsmt: cfg.srsmt_sets * cfg.srsmt_ways * srsmt_entry_bytes,
        stride: cfg.stride_sets * cfg.stride_ways * stride_entry_bytes,
        mbs: cfg.mbs_sets * cfg.mbs_ways * mbs_entry_bytes,
        nrbq: cfg.nrbq_entries * 8,
        crp: 16,
        rename_ext: 16 * 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let r = report(&MechConfig::paper());
        assert_eq!(r.srsmt, 11520, "SRSMT: 4 ways * 64 sets * 45 B");
        assert_eq!(r.stride, 24576, "stride predictor: 4 * 256 * 24 B");
        assert_eq!(r.mbs, 2048, "MBS: 4 * 64 * 8 B");
        assert_eq!(r.nrbq, 128, "NRBQ: 16 * 8 B");
        assert_eq!(r.crp, 16);
        assert_eq!(r.rename_ext, 1024, "16 B * 64 entries");
        // "a total of 39 Kbytes of extra storage"
        let kb = r.total() as f64 / 1024.0;
        assert!((38.0..40.0).contains(&kb), "total = {kb} KB");
    }

    #[test]
    fn srsmt_entry_is_45_bytes_for_4_replicas() {
        let bits = 4 * 8 + 4 * 2 + 2 * 64 + 2 + 2 * 64 + 64;
        assert_eq!(bits / 8, 45);
    }

    #[test]
    fn more_replicas_grow_srsmt() {
        let r4 = report(&MechConfig::paper());
        let mut c8 = MechConfig::paper();
        c8.replicas_per_inst = 8;
        let r8 = report(&c8);
        assert!(r8.srsmt > r4.srsmt);
    }
}
