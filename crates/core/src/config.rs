//! Configuration knobs of the CI/DV mechanism.

/// All mechanism parameters, defaulting to the configuration evaluated
/// in the paper (§3.1, Table 1).
#[derive(Debug, Clone)]
pub struct MechConfig {
    /// Speculative replicas generated per vectorized instruction
    /// (Figure 11 sweeps 1, 2, 4, 8; the paper's default is 4).
    pub replicas_per_inst: u8,
    /// Propagated strided-load PCs per rename-map entry (Figure 4
    /// sweeps 1, 2, 4; SpecInt2000 needs 1.7 on average).
    pub strided_pc_slots: usize,
    /// NRBQ capacity (16 entries, §3.1).
    pub nrbq_entries: usize,
    /// DAEC threshold: replica registers of an entry untouched across
    /// this many misprediction recoveries are released (§2.4.2: 2).
    pub daec_threshold: u8,
    /// MBS geometry: sets × ways (64 × 4, §3.1).
    pub mbs_sets: usize,
    /// MBS associativity.
    pub mbs_ways: usize,
    /// SRSMT geometry: sets × ways (64 × 4, §3.1).
    pub srsmt_sets: usize,
    /// SRSMT associativity.
    pub srsmt_ways: usize,
    /// Stride predictor geometry: sets × ways (256 × 4, Table 1).
    pub stride_sets: usize,
    /// Stride predictor associativity.
    pub stride_ways: usize,
    /// Speculative data memory positions (`ci-h-N` of Figure 13);
    /// `None` = monolithic register file holds replica values.
    pub specmem_positions: Option<usize>,
    /// Speculative-memory access latency in cycles ("twice slower than
    /// the register file", §2.4.6).
    pub specmem_latency: u32,
    /// Gate the CI scheme to hard-to-predict branches via the MBS
    /// (§2.3.1). Disabling treats every misprediction as hard
    /// (ablation).
    pub mbs_gating: bool,
    /// Use the full §2.3.1 re-convergence heuristics. Disabling falls
    /// back to "next sequential instruction" for every branch
    /// (ablation).
    pub full_rcp_heuristic: bool,
    /// Physical registers the replica engine must leave free for
    /// scalar rename (see DESIGN.md; 16 by default).
    pub replica_headroom: usize,
    /// Issue replicas *before* scalar instructions each cycle —
    /// inverting §2.4.1's "speculative vectorized instructions are
    /// given less priority than the rest" (ablation).
    pub replicas_first: bool,
    /// Refuse to re-vectorize a PC after this many commit-time
    /// mis-speculation repairs (a confidence counter, decaying every
    /// 32k commits). `u8::MAX` disables the filter — the default,
    /// because suppressing re-vectorization also suppresses the reuse
    /// the paper measures (see DESIGN.md and the ablations binary).
    pub misspec_blacklist: u8,
}

impl Default for MechConfig {
    fn default() -> Self {
        MechConfig {
            replicas_per_inst: 4,
            strided_pc_slots: 2,
            nrbq_entries: 16,
            daec_threshold: 2,
            mbs_sets: 64,
            mbs_ways: 4,
            srsmt_sets: 64,
            srsmt_ways: 4,
            stride_sets: 256,
            stride_ways: 4,
            specmem_positions: None,
            specmem_latency: 2,
            mbs_gating: true,
            full_rcp_heuristic: true,
            replica_headroom: 16,
            replicas_first: false,
            misspec_blacklist: u8::MAX,
        }
    }
}

impl MechConfig {
    /// The paper's evaluated configuration (§3.1).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Paper configuration with the §2.4.6 speculative data memory of
    /// `positions` entries (Figure 13's `ci-h-N`).
    pub fn paper_with_specmem(positions: usize) -> Self {
        MechConfig {
            specmem_positions: Some(positions),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MechConfig::paper();
        assert_eq!(c.replicas_per_inst, 4);
        assert_eq!(c.strided_pc_slots, 2);
        assert_eq!(c.nrbq_entries, 16);
        assert_eq!(c.daec_threshold, 2);
        assert_eq!((c.mbs_sets, c.mbs_ways), (64, 4));
        assert_eq!((c.srsmt_sets, c.srsmt_ways), (64, 4));
        assert_eq!((c.stride_sets, c.stride_ways), (256, 4));
        assert!(c.specmem_positions.is_none());
        assert!(c.mbs_gating);
        assert!(c.full_rcp_heuristic);
        assert_eq!(c.replica_headroom, 16);
    }

    #[test]
    fn specmem_variant() {
        let c = MechConfig::paper_with_specmem(768);
        assert_eq!(c.specmem_positions, Some(768));
        assert_eq!(c.specmem_latency, 2);
    }
}
