//! Rename-map extensions (§2.3.2 and Figure 7).
//!
//! Every logical register in the rename map is extended with:
//!
//! * the set of **strided-load PCs** in its backward slice (`stridedPC`
//!   — at most `strided_pc_slots` of them, the Figure 4 knob; the
//!   paper measures 1.7 needed on average). Arithmetic instructions
//!   union their sources' sets into the destination.
//! * the **V/S** bit and **Seq**: whether the latest producer of this
//!   logical register was vectorized, and if so its identifier (PC).

/// Maximum supported stridedPC slots (Figure 4 sweeps up to 4).
pub const MAX_STRIDED_SLOTS: usize = 4;

/// Per-logical-register rename extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenameExt {
    strided: [u64; MAX_STRIDED_SLOTS],
    n: u8,
    /// V/S bit: latest producer was vectorized.
    pub vs: bool,
    /// Producer identifier (PC) when `vs` is set.
    pub seq: u64,
}

impl RenameExt {
    /// Empty extension (no strided producers, not vectorized).
    pub fn new() -> Self {
        Self::default()
    }

    /// The strided-load PCs currently propagated to this register.
    #[inline]
    pub fn strided_pcs(&self) -> &[u64] {
        &self.strided[..self.n as usize]
    }

    /// Number of propagated PCs.
    #[inline]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether no strided PCs are propagated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reset to "produced by a non-strided, non-vectorized instruction".
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Mark as produced by the strided load at `pc`.
    pub fn set_strided_load(&mut self, pc: u64) {
        self.strided = [0; MAX_STRIDED_SLOTS];
        self.strided[0] = pc;
        self.n = 1;
    }

    /// Mark as produced by a vectorized instruction identified by `seq`.
    pub fn set_vectorized(&mut self, seq: u64) {
        self.vs = true;
        self.seq = seq;
    }

    /// Clear the vectorized marking (producer not vectorized).
    pub fn clear_vectorized(&mut self) {
        self.vs = false;
        self.seq = 0;
    }

    /// Propagate for an arithmetic destination: union of the sources'
    /// strided sets, truncated to `cap` slots. Returns how many PCs
    /// were dropped by the truncation (the Figure 4 loss metric).
    pub fn propagate_from(sources: &[&RenameExt], cap: usize) -> (RenameExt, usize) {
        let cap = cap.min(MAX_STRIDED_SLOTS);
        let mut out = RenameExt::new();
        let mut dropped = 0usize;
        for s in sources {
            for &pc in s.strided_pcs() {
                if out.strided_pcs().contains(&pc) {
                    continue;
                }
                if (out.n as usize) < cap {
                    out.strided[out.n as usize] = pc;
                    out.n += 1;
                } else {
                    dropped += 1;
                }
            }
        }
        (out, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_load_sets_single_pc() {
        let mut e = RenameExt::new();
        e.set_strided_load(0x40);
        assert_eq!(e.strided_pcs(), &[0x40]);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn union_dedups() {
        let mut a = RenameExt::new();
        a.set_strided_load(0x40);
        let mut b = RenameExt::new();
        b.set_strided_load(0x40);
        let (u, dropped) = RenameExt::propagate_from(&[&a, &b], 4);
        assert_eq!(u.strided_pcs(), &[0x40]);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn union_caps_and_counts_drops() {
        let mut a = RenameExt::new();
        a.set_strided_load(0x10);
        let mut b = RenameExt::new();
        b.set_strided_load(0x20);
        let (u2, d2) = RenameExt::propagate_from(&[&a, &b], 2);
        assert_eq!(u2.len(), 2);
        assert_eq!(d2, 0);
        let (u1, d1) = RenameExt::propagate_from(&[&a, &b], 1);
        assert_eq!(u1.strided_pcs(), &[0x10]);
        assert_eq!(d1, 1);
    }

    #[test]
    fn chain_propagation_accumulates() {
        // r3 <- f(load@A); r4 <- f(load@B); r5 <- r3 + r4
        let mut r3 = RenameExt::new();
        r3.set_strided_load(0xA0);
        let mut r4 = RenameExt::new();
        r4.set_strided_load(0xB0);
        let (r5, _) = RenameExt::propagate_from(&[&r3, &r4], 4);
        // r6 <- r5 + r3 : still {A0, B0}
        let (r6, d) = RenameExt::propagate_from(&[&r5, &r3], 4);
        let mut pcs = r6.strided_pcs().to_vec();
        pcs.sort_unstable();
        assert_eq!(pcs, vec![0xA0, 0xB0]);
        assert_eq!(d, 0);
    }

    #[test]
    fn vectorized_marking() {
        let mut e = RenameExt::new();
        assert!(!e.vs);
        e.set_vectorized(0x77);
        assert!(e.vs);
        assert_eq!(e.seq, 0x77);
        e.clear_vectorized();
        assert!(!e.vs);
    }

    #[test]
    fn clear_wipes_everything() {
        let mut e = RenameExt::new();
        e.set_strided_load(0x40);
        e.set_vectorized(0x40);
        e.clear();
        assert!(e.is_empty());
        assert!(!e.vs);
    }

    #[test]
    fn cap_above_max_is_clamped() {
        let mut a = RenameExt::new();
        a.set_strided_load(1);
        let (u, _) = RenameExt::propagate_from(&[&a], 100);
        assert_eq!(u.len(), 1);
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;

    #[test]
    fn rename_ext_is_copy_for_cheap_checkpoints() {
        // The pipeline snapshots [RenameExt; 64] per branch; Copy keeps
        // that a memcpy.
        fn assert_copy<T: Copy>() {}
        assert_copy::<RenameExt>();
        let mut a = RenameExt::new();
        a.set_strided_load(0x40);
        a.set_vectorized(0x40);
        let b = a; // copy
        let mut a2 = a;
        a2.clear();
        assert_eq!(b.strided_pcs(), &[0x40], "copies are independent");
        assert!(b.vs);
    }

    #[test]
    fn propagate_from_empty_sources() {
        let (x, d) = RenameExt::propagate_from(&[], 4);
        assert!(x.is_empty());
        assert_eq!(d, 0);
        let e = RenameExt::new();
        let (x, d) = RenameExt::propagate_from(&[&e, &e], 2);
        assert!(x.is_empty());
        assert_eq!(d, 0);
    }

    #[test]
    fn cap_zero_drops_everything() {
        let mut a = RenameExt::new();
        a.set_strided_load(0x10);
        let (x, d) = RenameExt::propagate_from(&[&a], 0);
        assert!(x.is_empty());
        assert_eq!(d, 1, "the dropped PC is counted for Figure 4");
    }
}
