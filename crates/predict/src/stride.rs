//! Stride (memory-address) predictor — §2.3.2 / Figure 3 of the paper.
//!
//! Table indexed by load PC: 4 ways × 256 sets. Each entry holds the
//! load's PC (full tag), the last effective address, the last observed
//! stride, a 2-bit up/down saturating confidence counter (trusted when
//! `> 1`) and the `S` flag that marks the load as *selected for
//! speculative vectorization* by the control-independence mechanism.

/// One stride-predictor entry (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideEntry {
    /// PC of the load (full tag).
    pub pc: u64,
    /// Last effective address observed.
    pub last_addr: u64,
    /// Last observed stride (bytes, signed).
    pub stride: i64,
    /// 2-bit confidence; prediction trusted when `> 1`.
    pub confidence: u8,
    /// Selected-for-vectorization flag (set by `cfir-core`).
    pub selected: bool,
}

impl StrideEntry {
    /// Whether the stride prediction is trusted (§2.3.2: "the
    /// prediction is trusted when this field has a value greater
    /// than 1").
    #[inline]
    pub fn trusted(&self) -> bool {
        self.confidence > 1
    }

    /// Predicted address of the `n`-th future instance
    /// (`last_addr + stride * n`, §2.3.3).
    #[inline]
    pub fn predict(&self, n: u64) -> u64 {
        self.last_addr
            .wrapping_add((self.stride as u64).wrapping_mul(n))
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    entry: StrideEntry,
    valid: bool,
    stamp: u64,
}

/// The set-associative stride-predictor table.
#[derive(Debug, Clone)]
pub struct StridePredictor {
    ways: Vec<Way>,
    sets: usize,
    assoc: usize,
    clock: u64,
    /// Observations fed in.
    pub observations: u64,
    /// Entry replacements (capacity conflicts).
    pub replacements: u64,
}

impl StridePredictor {
    /// Create a predictor with `sets` × `assoc` entries.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0);
        assert!(assoc > 0);
        let empty = Way {
            entry: StrideEntry {
                pc: 0,
                last_addr: 0,
                stride: 0,
                confidence: 0,
                selected: false,
            },
            valid: false,
            stamp: 0,
        };
        StridePredictor {
            ways: vec![empty; sets * assoc],
            sets,
            assoc,
            clock: 0,
            observations: 0,
            replacements: 0,
        }
    }

    /// The paper's configuration: 4-way set associative with 256 sets.
    pub fn paper() -> Self {
        Self::new(256, 4)
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let base = self.set_of(pc) * self.assoc;
        (base..base + self.assoc).find(|&i| self.ways[i].valid && self.ways[i].entry.pc == pc)
    }

    /// Look up the entry for a load PC.
    pub fn lookup(&self, pc: u64) -> Option<StrideEntry> {
        self.find(pc).map(|i| self.ways[i].entry)
    }

    /// Whether the load at `pc` currently has a trusted stride.
    pub fn is_strided(&self, pc: u64) -> bool {
        self.lookup(pc).map(|e| e.trusted()).unwrap_or(false)
    }

    /// Feed one executed instance of the load at `pc` with effective
    /// address `addr`. Allocates an entry on first sight (LRU victim).
    pub fn observe(&mut self, pc: u64, addr: u64) {
        self.observations += 1;
        self.clock += 1;
        if let Some(i) = self.find(pc) {
            let stamp = self.clock;
            let w = &mut self.ways[i];
            let new_stride = addr.wrapping_sub(w.entry.last_addr) as i64;
            if new_stride == w.entry.stride {
                if w.entry.confidence < 3 {
                    w.entry.confidence += 1;
                }
            } else if w.entry.confidence > 0 {
                // Up/down: lose confidence but keep the old stride until
                // confidence drains, so a single irregular access does
                // not destroy an established pattern.
                w.entry.confidence -= 1;
            } else {
                w.entry.stride = new_stride;
                w.entry.selected = false;
            }
            w.entry.last_addr = addr;
            w.stamp = stamp;
            return;
        }
        // Allocate.
        let base = self.set_of(pc) * self.assoc;
        let slot = (base..base + self.assoc)
            .min_by_key(|&i| (self.ways[i].valid, self.ways[i].stamp))
            .unwrap();
        if self.ways[slot].valid {
            self.replacements += 1;
        }
        self.ways[slot] = Way {
            entry: StrideEntry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                selected: false,
            },
            valid: true,
            stamp: self.clock,
        };
    }

    /// Set or clear the `S` (selected-for-vectorization) flag.
    /// Returns `false` if the PC has no entry.
    pub fn set_selected(&mut self, pc: u64, sel: bool) -> bool {
        match self.find(pc) {
            Some(i) => {
                self.ways[i].entry.selected = sel;
                true
            }
            None => false,
        }
    }

    /// Whether the load at `pc` is currently selected (`S` flag).
    pub fn selected(&self, pc: u64) -> bool {
        self.lookup(pc).map(|e| e.selected).unwrap_or(false)
    }

    /// Count of currently-valid entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_unit_stride() {
        let mut sp = StridePredictor::paper();
        for i in 0..4u64 {
            sp.observe(0x100, 1000 + i * 8);
        }
        let e = sp.lookup(0x100).unwrap();
        assert_eq!(e.stride, 8);
        assert!(e.trusted());
        assert!(sp.is_strided(0x100));
        assert_eq!(e.predict(1), e.last_addr + 8);
        assert_eq!(e.predict(3), e.last_addr + 24);
    }

    #[test]
    fn first_observation_not_trusted() {
        let mut sp = StridePredictor::paper();
        sp.observe(0x100, 1000);
        assert!(!sp.is_strided(0x100));
        sp.observe(0x100, 1008);
        // stride was 0 initially; 8 != 0 so confidence stays 0, stride -> 8
        assert!(!sp.is_strided(0x100));
        sp.observe(0x100, 1016);
        sp.observe(0x100, 1024);
        assert!(sp.is_strided(0x100));
    }

    #[test]
    fn negative_stride() {
        let mut sp = StridePredictor::paper();
        for i in 0..5i64 {
            sp.observe(0x40, (10000 - i * 16) as u64);
        }
        let e = sp.lookup(0x40).unwrap();
        assert_eq!(e.stride, -16);
        assert!(e.trusted());
        assert_eq!(e.predict(1), e.last_addr.wrapping_sub(16));
    }

    #[test]
    fn one_irregular_access_does_not_destroy_pattern() {
        let mut sp = StridePredictor::paper();
        for i in 0..6u64 {
            sp.observe(0x100, 1000 + i * 8);
        }
        sp.observe(0x100, 55555); // blip
        let e = sp.lookup(0x100).unwrap();
        assert_eq!(e.stride, 8, "stride kept while confidence drains");
        assert!(
            e.trusted(),
            "one blip only drops a saturated counter to 2, still trusted"
        );
        // Two more irregular accesses drain confidence below the threshold.
        sp.observe(0x100, 999);
        sp.observe(0x100, 123456);
        assert!(!sp.is_strided(0x100));
        // The pattern can be re-established from a new base.
        sp.observe(0x100, 55555);
        sp.observe(0x100, 55563); // conf 0 -> stride replaced? stride was 8... matches! conf 1
        sp.observe(0x100, 55571);
        sp.observe(0x100, 55579);
        assert!(sp.is_strided(0x100));
    }

    #[test]
    fn random_addresses_never_trusted() {
        let mut sp = StridePredictor::paper();
        let mut x = 0x12345u64;
        for _ in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sp.observe(0x200, x);
        }
        assert!(!sp.is_strided(0x200));
    }

    #[test]
    fn selected_flag_lifecycle() {
        let mut sp = StridePredictor::paper();
        assert!(!sp.set_selected(0x10, true), "no entry yet");
        sp.observe(0x10, 100);
        assert!(sp.set_selected(0x10, true));
        assert!(sp.selected(0x10));
        assert!(sp.set_selected(0x10, false));
        assert!(!sp.selected(0x10));
    }

    #[test]
    fn stride_change_clears_selected() {
        let mut sp = StridePredictor::paper();
        for i in 0..4u64 {
            sp.observe(0x10, 100 + i * 8);
        }
        sp.set_selected(0x10, true);
        // Drain confidence to zero, then change stride -> S cleared.
        for a in [9999u64, 123, 45, 7777] {
            sp.observe(0x10, a);
        }
        assert!(!sp.selected(0x10));
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut sp = StridePredictor::new(1, 2); // one set, 2 ways
        sp.observe(0x00, 1);
        sp.observe(0x04, 2);
        sp.observe(0x00, 3); // touch 0x00
        sp.observe(0x08, 4); // evicts 0x04
        assert!(sp.lookup(0x00).is_some());
        assert!(sp.lookup(0x04).is_none());
        assert!(sp.lookup(0x08).is_some());
        assert_eq!(sp.replacements, 1);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut sp = StridePredictor::paper();
        for i in 0..5u64 {
            sp.observe(0x100, 1000 + i * 8);
            sp.observe(0x104, 9000 + i * 24);
        }
        assert_eq!(sp.lookup(0x100).unwrap().stride, 8);
        assert_eq!(sp.lookup(0x104).unwrap().stride, 24);
        assert_eq!(sp.occupancy(), 2);
    }
}
