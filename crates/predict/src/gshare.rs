//! Gshare conditional-branch predictor with speculative history.

/// Gshare predictor: `entries` 2-bit counters indexed by
/// `(pc >> 2) ^ history`. Table 1 uses 64K entries.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: u64,
    history_bits: u32,
    history: u64,
    /// Predictions made.
    pub lookups: u64,
    /// Training updates that disagreed with the prediction made with
    /// the same history (diagnostic; the core keeps the real
    /// misprediction count).
    pub mispredicts: u64,
}

impl Gshare {
    /// Create a predictor with `entries` counters (power of two).
    /// History length is `log2(entries)` bits.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries >= 2);
        Gshare {
            table: vec![2; entries], // weakly taken
            mask: entries as u64 - 1,
            history_bits: entries.trailing_zeros(),
            history: 0,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// The paper's 64K-entry configuration.
    pub fn paper() -> Self {
        Self::new(64 * 1024)
    }

    #[inline]
    fn index(&self, pc: u64, history: u64) -> usize {
        (((pc >> 2) ^ history) & self.mask) as usize
    }

    /// Current speculative global history (checkpoint this at fetch).
    #[inline]
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restore history after squashing wrong-path branches.
    #[inline]
    pub fn restore_history(&mut self, h: u64) {
        self.history = h;
    }

    /// Predict the direction of the branch at `pc` using the current
    /// speculative history, and push the prediction into the history.
    /// Returns the predicted direction.
    pub fn predict_and_update(&mut self, pc: u64) -> bool {
        self.lookups += 1;
        let taken = self.table[self.index(pc, self.history)] >= 2;
        self.push(taken);
        taken
    }

    /// Peek at the prediction without touching history (diagnostics).
    pub fn peek(&self, pc: u64) -> bool {
        self.table[self.index(pc, self.history)] >= 2
    }

    /// Shift an outcome into the speculative history.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u64) & mask;
    }

    /// Number of 2-bit counters in the table.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Export the warm state (counter table + global history) for a
    /// checkpoint. Statistics counters are deliberately excluded: warm
    /// state describes *what the predictor has learned*, not how it was
    /// exercised.
    pub fn export_warm(&self) -> (Vec<u8>, u64) {
        (self.table.clone(), self.history)
    }

    /// Import warm state previously produced by [`export_warm`].
    /// Panics if the table length does not match this predictor's
    /// configured entry count (a checkpoint/config mismatch).
    ///
    /// [`export_warm`]: Gshare::export_warm
    pub fn import_warm(&mut self, table: &[u8], history: u64) {
        assert_eq!(
            table.len(),
            self.table.len(),
            "gshare warm-state table length mismatch"
        );
        self.table.copy_from_slice(table);
        self.history = history & self.mask;
    }

    /// Train the counter for the branch at `pc` that was predicted with
    /// `history_at_predict`, given its actual direction.
    pub fn train(&mut self, pc: u64, history_at_predict: u64, taken: bool) {
        let i = self.index(pc, history_at_predict);
        let c = &mut self.table[i];
        let predicted = *c >= 2;
        if predicted != taken {
            self.mispredicts += 1;
        }
        if taken {
            if *c < 3 {
                *c += 1;
            }
        } else if *c > 0 {
            *c -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut g = Gshare::new(1024);
        let pc = 0x40;
        for _ in 0..4 {
            let h = g.history();
            let _ = g.predict_and_update(pc);
            g.train(pc, h, true);
        }
        // With a stable history pattern the counter saturates taken.
        let h = g.history();
        assert!(g.predict_and_update(pc));
        g.train(pc, h, true);
    }

    #[test]
    fn learns_never_taken() {
        let mut g = Gshare::new(1024);
        let pc = 0x80;
        for _ in 0..8 {
            let h = g.history();
            let p = g.predict_and_update(pc);
            if p {
                // front end repairs the speculative history on a mispredict
                g.restore_history(h);
                g.push(false);
            }
            g.train(pc, h, false);
        }
        assert!(!g.peek(pc));
    }

    #[test]
    fn history_checkpoint_restore() {
        let mut g = Gshare::new(1024);
        let h0 = g.history();
        g.predict_and_update(0x10);
        g.predict_and_update(0x20);
        assert_ne!(g.history(), h0);
        g.restore_history(h0);
        assert_eq!(g.history(), h0);
    }

    #[test]
    fn history_is_masked_to_log2_entries() {
        let mut g = Gshare::new(16); // 4 history bits
        for _ in 0..100 {
            g.push(true);
        }
        assert_eq!(g.history(), 0xF);
    }

    #[test]
    fn alternating_pattern_learned_via_history() {
        // A strict T/N/T/N pattern is perfectly predictable with gshare
        // once the history disambiguates the two states.
        let mut g = Gshare::new(4096);
        let pc = 0x100;
        let mut correct = 0;
        let mut total = 0;
        let mut outcome = false;
        for i in 0..400 {
            outcome = !outcome;
            let h = g.history();
            let p = g.predict_and_update(pc);
            // history now contains the *prediction*; on a mispredict the
            // front end would repair it — emulate that:
            if p != outcome {
                g.restore_history(h);
                g.push(outcome);
            }
            g.train(pc, h, outcome);
            if i >= 200 {
                total += 1;
                if p == outcome {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.95, "{correct}/{total}");
    }

    #[test]
    fn counters_saturate() {
        let mut g = Gshare::new(8);
        for _ in 0..10 {
            g.train(0, 0, true);
        }
        for _ in 0..10 {
            g.train(0, 0, false);
        }
        // After saturating down, prediction with history 0 must be NT.
        g.restore_history(0);
        assert!(!g.peek(0));
    }

    #[test]
    fn warm_state_round_trip() {
        let mut g = Gshare::new(1024);
        for i in 0..200u64 {
            let pc = 0x40 + (i % 7) * 4;
            let h = g.history();
            let p = g.predict_and_update(pc);
            let taken = i % 3 == 0;
            if p != taken {
                g.restore_history(h);
                g.push(taken);
            }
            g.train(pc, h, taken);
        }
        let (table, history) = g.export_warm();
        let mut fresh = Gshare::new(1024);
        fresh.import_warm(&table, history);
        assert_eq!(fresh.history(), g.history());
        for pc in (0..64u64).map(|i| i * 4) {
            assert_eq!(fresh.peek(pc), g.peek(pc));
        }
    }

    #[test]
    #[should_panic(expected = "table length mismatch")]
    fn warm_state_rejects_wrong_size() {
        let mut g = Gshare::new(16);
        g.import_warm(&[2; 8], 0);
    }

    #[test]
    fn lookup_counter() {
        let mut g = Gshare::new(8);
        g.predict_and_update(0);
        g.predict_and_update(4);
        assert_eq!(g.lookups, 2);
    }
}
