//! # cfir-predict
//!
//! Prediction substrate for the CFIR simulator:
//!
//! * [`Gshare`] — the 64K-entry gshare conditional-branch predictor of
//!   Table 1, with speculative global-history management (history is
//!   updated at prediction time and repaired from a checkpoint on a
//!   misprediction, as a real front end does).
//! * [`StridePredictor`] — the memory-address stride predictor of
//!   §2.3.2/Figure 3 (González & González, EuroPar'97 style): a 4-way ×
//!   256-set table holding `{PC, last address, stride, 2-bit confidence,
//!   S flag}`. A prediction is *trusted* when confidence > 1. The `S`
//!   flag marks loads selected for speculative vectorization by the
//!   control-independence mechanism in `cfir-core`.

//! ```
//! use cfir_predict::StridePredictor;
//!
//! let mut sp = StridePredictor::paper();
//! for i in 0..4u64 {
//!     sp.observe(0x40, 0x1000 + i * 8);
//! }
//! let e = sp.lookup(0x40).unwrap();
//! assert!(e.trusted());
//! assert_eq!(e.stride, 8);
//! assert_eq!(e.predict(2), e.last_addr + 16);
//! ```

pub mod gshare;
pub mod stride;

pub use gshare::Gshare;
pub use stride::{StrideEntry, StridePredictor};
