//! Property tests for the predictors.

use cfir_predict::{Gshare, StridePredictor};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gshare_history_restore_is_exact(
        pushes in prop::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut g = Gshare::new(1024);
        let h0 = g.history();
        for &t in &pushes {
            g.push(t);
        }
        g.restore_history(h0);
        prop_assert_eq!(g.history(), h0);
    }

    #[test]
    fn gshare_converges_on_constant_direction(
        pc in (0u64..4096).prop_map(|x| x * 4),
        taken in any::<bool>(),
    ) {
        let mut g = Gshare::new(4096);
        for _ in 0..32 {
            let h = g.history();
            let p = g.predict_and_update(pc);
            if p != taken {
                g.restore_history(h);
                g.push(taken);
            }
            g.train(pc, h, taken);
        }
        // After convergence, predictions with the steady history match.
        let h = g.history();
        let p = g.predict_and_update(pc);
        g.restore_history(h);
        prop_assert_eq!(p, taken);
    }

    #[test]
    fn stride_trust_requires_three_consistent_deltas(
        base in 0u64..1_000_000,
        stride in 1i64..512,
        n in 1usize..10,
    ) {
        let mut sp = StridePredictor::paper();
        for i in 0..n {
            sp.observe(0x80, base.wrapping_add((stride as u64) * i as u64));
        }
        let trusted = sp.is_strided(0x80);
        // Entry allocated at obs 1 (conf 0, stride 0); stride locks at
        // obs 2; confidence reaches 2 at obs 4.
        prop_assert_eq!(trusted, n >= 4, "n = {}", n);
        if trusted {
            let e = sp.lookup(0x80).unwrap();
            prop_assert_eq!(e.stride, stride);
        }
    }

    #[test]
    fn stride_sets_are_isolated(
        pcs in prop::collection::hash_set(0u64..256u64, 2..8),
    ) {
        // Each PC gets its own arithmetic sequence; none may corrupt
        // another's stride.
        let mut sp = StridePredictor::paper();
        let pcs: Vec<u64> = pcs.into_iter().map(|p| p * 4).collect();
        for round in 0..6u64 {
            for (k, &pc) in pcs.iter().enumerate() {
                let stride = 8 * (k as u64 + 1);
                sp.observe(pc, 10_000 * (k as u64 + 1) + round * stride);
            }
        }
        for (k, &pc) in pcs.iter().enumerate() {
            let e = sp.lookup(pc).unwrap();
            prop_assert_eq!(e.stride, 8 * (k as i64 + 1), "pc {:#x}", pc);
            prop_assert!(e.trusted());
        }
    }
}
