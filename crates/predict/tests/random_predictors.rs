//! Randomized tests for the predictors, over a seeded in-tree PRNG.

use cfir_obs::Rng64;
use cfir_predict::{Gshare, StridePredictor};

#[test]
fn gshare_history_restore_is_exact() {
    let mut rng = Rng64::seed_from_u64(0x6541);
    for _ in 0..50 {
        let n = rng.gen_range(1, 64) as usize;
        let mut g = Gshare::new(1024);
        let h0 = g.history();
        for _ in 0..n {
            g.push(rng.gen_bool(0.5));
        }
        g.restore_history(h0);
        assert_eq!(g.history(), h0);
    }
}

#[test]
fn gshare_converges_on_constant_direction() {
    let mut rng = Rng64::seed_from_u64(0x6542);
    for _ in 0..100 {
        let pc = rng.gen_range(0, 4096) * 4;
        let taken = rng.gen_bool(0.5);
        let mut g = Gshare::new(4096);
        for _ in 0..32 {
            let h = g.history();
            let p = g.predict_and_update(pc);
            if p != taken {
                g.restore_history(h);
                g.push(taken);
            }
            g.train(pc, h, taken);
        }
        // After convergence, predictions with the steady history match.
        let h = g.history();
        let p = g.predict_and_update(pc);
        g.restore_history(h);
        assert_eq!(p, taken, "pc {pc:#x} taken {taken}");
    }
}

#[test]
fn stride_trust_requires_three_consistent_deltas() {
    let mut rng = Rng64::seed_from_u64(0x57211);
    for _ in 0..200 {
        let base = rng.gen_range(0, 1_000_000);
        let stride = rng.gen_range(1, 512) as i64;
        let n = rng.gen_range(1, 10) as usize;
        let mut sp = StridePredictor::paper();
        for i in 0..n {
            sp.observe(0x80, base.wrapping_add((stride as u64) * i as u64));
        }
        let trusted = sp.is_strided(0x80);
        // Entry allocated at obs 1 (conf 0, stride 0); stride locks at
        // obs 2; confidence reaches 2 at obs 4.
        assert_eq!(trusted, n >= 4, "n = {n}");
        if trusted {
            let e = sp.lookup(0x80).unwrap();
            assert_eq!(e.stride, stride);
        }
    }
}

#[test]
fn stride_sets_are_isolated() {
    let mut rng = Rng64::seed_from_u64(0x57212);
    for _ in 0..50 {
        // Each PC gets its own arithmetic sequence; none may corrupt
        // another's stride.
        let mut set = std::collections::HashSet::new();
        let want = rng.gen_range(2, 8) as usize;
        while set.len() < want {
            set.insert(rng.gen_range(0, 256));
        }
        let pcs: Vec<u64> = set.into_iter().map(|p: u64| p * 4).collect();
        let mut sp = StridePredictor::paper();
        for round in 0..6u64 {
            for (k, &pc) in pcs.iter().enumerate() {
                let stride = 8 * (k as u64 + 1);
                sp.observe(pc, 10_000 * (k as u64 + 1) + round * stride);
            }
        }
        for (k, &pc) in pcs.iter().enumerate() {
            let e = sp.lookup(pc).unwrap();
            assert_eq!(e.stride, 8 * (k as i64 + 1), "pc {pc:#x}");
            assert!(e.trusted());
        }
    }
}
