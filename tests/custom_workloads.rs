//! Co-simulation and behaviour checks for the *parametric* workload
//! generator (`cfir_workloads::custom`) across its axes — the same
//! guarantees the named suite gets.

use cfir::prelude::*;
use cfir_workloads::custom::{build, CustomParams};

fn run(params: CustomParams, mode: Mode) -> (Pipeline<'static>, Emulator) {
    let spec = WorkloadSpec {
        iters: 1200,
        elems: 1024,
        seed: 0x1234,
    };
    let w = build(params, spec);
    let prog: &'static cfir_isa::Program = Box::leak(Box::new(w.prog));
    let mut emu = Emulator::new(w.mem.clone());
    emu.run(prog, 50_000_000);
    assert!(emu.halted);
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(u64::MAX >> 1);
    cfg.cosim_check = true;
    let mut pipe = Pipeline::new(prog, w.mem.clone(), cfg);
    assert_eq!(pipe.run(), RunExit::Halted);
    (pipe, emu)
}

#[test]
fn every_axis_combination_cosims_under_ci() {
    for taken in [10u32, 50, 90] {
        for strided in [0u32, 1, 2] {
            for irregular in [0u32, 1] {
                let p = CustomParams {
                    taken_percent: taken,
                    strided_loads: strided,
                    irregular_loads: irregular,
                    ci_tail: 3,
                    store_shift: None,
                };
                let (pipe, emu) = run(p, Mode::Ci);
                for r in 0..64u8 {
                    assert_eq!(
                        pipe.arch_reg(r),
                        emu.reg(r),
                        "taken={taken} strided={strided} irregular={irregular} r{r}"
                    );
                }
            }
        }
    }
}

#[test]
fn reuse_tracks_the_strided_axis() {
    // With no strided loads, the vectorizer has nothing to chew on;
    // with one, it engages.
    let none = run(
        CustomParams {
            strided_loads: 0,
            taken_percent: 50,
            ..Default::default()
        },
        Mode::Ci,
    )
    .0;
    let one = run(
        CustomParams {
            strided_loads: 1,
            taken_percent: 50,
            ..Default::default()
        },
        Mode::Ci,
    )
    .0;
    assert!(
        one.stats.committed_reuse > none.stats.committed_reuse,
        "strided {} vs none {}",
        one.stats.committed_reuse,
        none.stats.committed_reuse
    );
}

#[test]
fn coherence_store_axis_cosims() {
    let p = CustomParams {
        store_shift: Some(3),
        ..Default::default()
    };
    let (pipe, emu) = run(p, Mode::Ci);
    for r in 0..64u8 {
        assert_eq!(pipe.arch_reg(r), emu.reg(r), "r{r}");
    }
    assert!(pipe.stats.stores > 0);
}

#[test]
fn ci_tail_lengthens_the_reusable_region() {
    let short = run(
        CustomParams {
            ci_tail: 1,
            taken_percent: 50,
            ..Default::default()
        },
        Mode::Ci,
    )
    .0;
    let long = run(
        CustomParams {
            ci_tail: 8,
            taken_percent: 50,
            ..Default::default()
        },
        Mode::Ci,
    )
    .0;
    // More CI work per iteration means more vectorization *attempts*.
    // (Reuse itself need not rise: the rotating tail reuses the same
    // destination registers, so the extra entries also contend.)
    assert!(
        long.stats.vectorizations >= short.stats.vectorizations,
        "long {} vs short {}",
        long.stats.vectorizations,
        short.stats.vectorizations
    );
    assert!(short.stats.committed_reuse > 0);
    assert!(long.stats.committed_reuse > 0);
}
