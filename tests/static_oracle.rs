//! Static-oracle cross-checks: the dynamic reconvergence heuristic and
//! the MBS contents validated against the post-dominator ground truth
//! from `cfir-analyze`.

use cfir::analyze::{analyze, Agreement};
use cfir::prelude::*;
use cfir_obs::json;

/// Across the whole suite, `rcp::estimate` must agree with the static
/// post-dominator RCP on at least 90% of hammock-class branches — the
/// shapes the heuristic (paper §2.3.1) is built for. Every divergence
/// is enumerated in the failure message, never hidden in an average.
#[test]
fn heuristic_matches_static_rcp_on_hammocks() {
    let (mut checked, mut agree) = (0u64, 0u64);
    let mut divergences: Vec<String> = Vec::new();
    for w in suite(WorkloadSpec::default()) {
        let a = analyze(&w.prog);
        let agr = Agreement::compute(&w.prog, &a.branches);
        checked += agr.hammock_checked;
        agree += agr.hammock_agree;
        for d in &agr.divergences {
            divergences.push(format!(
                "{}: pc {} ({}) static {:?} vs estimate {:?}",
                w.name, d.pc, d.class, d.static_rcp, d.estimate
            ));
        }
    }
    assert!(checked >= 12, "suite must contain hammocks to check");
    let frac = agree as f64 / checked as f64;
    assert!(
        frac >= 0.90,
        "hammock RCP agreement {agree}/{checked} = {frac:.3} < 0.90; divergences:\n{}",
        divergences.join("\n")
    );
}

fn run_ci(name: &str, insts: u64) -> SimStats {
    let w = by_name(
        name,
        WorkloadSpec {
            iters: 1 << 30,
            elems: 4096,
            seed: 0xFEED,
        },
    )
    .unwrap();
    let c = SimConfig::paper_baseline()
        .with_mode(Mode::Ci)
        .with_max_insts(insts);
    let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
    pipe.run();
    pipe.stats.clone()
}

/// The runtime oracle counts every `rcp::estimate` call at a
/// mispredicted branch against the static truth seeded at pipeline
/// construction; on the suite's hammock kernels they must agree.
#[test]
fn runtime_oracle_counters_agree_on_bzip2() {
    let s = run_ci("bzip2", 40_000);
    let (checks, agree) = s.branch_prof.rcp_totals();
    assert!(checks > 0, "CI run must exercise the detector");
    assert_eq!(
        checks, agree,
        "bzip2's hammock is exactly the shape the heuristic targets"
    );
    assert!((s.branch_prof.rcp_agreement() - 1.0).abs() < 1e-12);
}

/// Every valid MBS entry must tag a PC that really is a conditional
/// branch — the oracle counts violations during finalize.
#[test]
fn mbs_holds_only_real_branches() {
    for name in ["bzip2", "perlbmk", "gcc"] {
        let s = run_ci(name, 40_000);
        assert!(
            s.oracle_mbs_checked > 0,
            "{name}: MBS must fill under CI mode"
        );
        assert_eq!(s.oracle_mbs_nonbranch, 0, "{name}: non-branch PC in MBS");
    }
}

/// The snapshot exposes the oracle block and per-branch static truth.
#[test]
fn snapshot_carries_oracle_fields() {
    let s = run_ci("bzip2", 40_000);
    let doc = json::parse(&run_json("bzip2", "ci", &s)).expect("valid json");
    let orc = doc.get("oracle").expect("oracle object");
    let checked = orc.get("rcp_checked").unwrap().as_u64().unwrap();
    let agreed = orc.get("rcp_agreed").unwrap().as_u64().unwrap();
    assert!(checked > 0);
    assert_eq!(checked, agreed);
    assert_eq!(orc.get("mbs_nonbranch").unwrap().as_u64(), Some(0));
    let branches = doc
        .get("branch_prof")
        .unwrap()
        .get("branches")
        .unwrap()
        .as_arr()
        .unwrap();
    assert!(
        branches
            .iter()
            .any(|b| b.get("hammock_class").and_then(|c| c.as_str()) == Some("ifthenelse")),
        "at least one profiled branch must carry its static class"
    );
}
