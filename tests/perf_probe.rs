//! Ad-hoc perf probe (ignored by default): times one kernel under
//! different config axes to locate the hot path. Run with
//! `cargo test --release --test perf_probe -- --ignored --nocapture`.

use cfir::prelude::*;
use std::time::Instant;

fn time_run(label: &str, mut cfg: SimConfig, lifecycle: bool, cosim: bool) {
    cfg.record_lifecycle = lifecycle;
    cfg.cosim_check = cosim;
    let w = by_name("bzip2", WorkloadSpec::default()).unwrap();
    let minflt = || {
        std::fs::read_to_string("/proc/self/stat")
            .ok()
            .and_then(|st| st.split(' ').nth(9).and_then(|v| v.parse::<u64>().ok()))
            .unwrap_or(0)
    };
    let f0 = minflt();
    let t = Instant::now();
    let mut p = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    p.run();
    let dt = t.elapsed().as_secs_f64();
    println!(
        "{label:32} {dt:7.3}s  {:.0} insts/s  cycles={}  records={}  minflt={}",
        p.stats.committed as f64 / dt,
        p.stats.cycles,
        p.stats.lifecycle_records,
        minflt() - f0
    );
}

#[test]
#[ignore]
fn probe() {
    for mode in [Mode::Scalar, Mode::Vect] {
        let base = SimConfig::paper_baseline()
            .with_mode(mode)
            .with_regs(RegFileSize::Finite(512))
            .with_max_insts(150_000);
        let mut with_intervals = base.clone();
        with_intervals.interval_cycles = 10_000;
        time_run(&format!("{mode:?} bare"), base.clone(), false, false);
        time_run(&format!("{mode:?} +cosim"), base.clone(), false, true);
        time_run(&format!("{mode:?} +lifecycle"), base.clone(), true, false);
        time_run(
            &format!("{mode:?} +lc+cosim+iv"),
            with_intervals,
            true,
            true,
        );
    }
}
