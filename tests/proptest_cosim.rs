//! Property-based co-simulation: randomly generated (terminating)
//! programs must produce the same architectural state on the golden
//! emulator and on the out-of-order core in every machine mode —
//! including with the full CI/DV mechanism speculating over them.

use cfir::prelude::*;
use cfir_isa::{AluOp, Cond};
use proptest::prelude::*;

const DATA_BASE: i64 = 0x2_0000;
const OUT_BASE: i64 = 0x8_0000;
const DATA_MASK: i64 = 0x3FF; // 128 words

/// One step of the random loop body.
#[derive(Debug, Clone)]
enum BodyOp {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluOp, u8, u8, i8),
    LoadStrided(u8),
    LoadIndexed(u8, u8),
    Store(u8),
    Hammock(Cond, u8, u8),
    Accumulate(u8, u8),
}

fn reg() -> impl Strategy<Value = u8> {
    // Work registers r10..r25; the harness owns r1..r9.
    (10u8..=25).prop_map(|r| r)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Slt),
        Just(AluOp::Div),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
    ]
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (alu_op(), reg(), reg(), reg()).prop_map(|(o, a, b, c)| BodyOp::Alu(o, a, b, c)),
        (alu_op(), reg(), reg(), any::<i8>()).prop_map(|(o, a, b, i)| BodyOp::AluImm(o, a, b, i)),
        reg().prop_map(BodyOp::LoadStrided),
        (reg(), reg()).prop_map(|(d, i)| BodyOp::LoadIndexed(d, i)),
        reg().prop_map(BodyOp::Store),
        (cond(), reg(), reg()).prop_map(|(c, a, b)| BodyOp::Hammock(c, a, b)),
        (reg(), reg()).prop_map(|(a, b)| BodyOp::Accumulate(a, b)),
    ]
}

/// Build a terminating program: `iters` iterations of a random body
/// over a masked index, then halt. Register conventions: r1 = iteration
/// counter, r2 = limit, r3 = mask, r4 = data base, r5 = out base,
/// r6 = byte offset of the strided cursor.
fn build(ops: &[BodyOp], iters: u16) -> Program {
    let mut b = ProgramBuilder::new("prop");
    b.li(1, 0);
    b.li(2, iters as i64);
    b.li(3, DATA_MASK);
    b.li(4, DATA_BASE);
    b.li(5, OUT_BASE);
    b.li(6, 0);
    let top = b.label_here();
    // Strided cursor: r7 = data_base + (r6 & mask)
    b.alu(AluOp::And, 7, 6, 3);
    b.alu(AluOp::Add, 7, 7, 4);
    for op in ops {
        match *op {
            BodyOp::Alu(o, d, s1, s2) => {
                b.alu(o, d, s1, s2);
            }
            BodyOp::AluImm(o, d, s, imm) => {
                b.alui(o, d, s, imm as i64);
            }
            BodyOp::LoadStrided(d) => {
                b.ld(d, 7, 0);
            }
            BodyOp::LoadIndexed(d, idx) => {
                // r8 = base + ((idx*8) & mask): arbitrary but in-bounds.
                b.alui(AluOp::Mul, 8, idx, 8);
                b.alu(AluOp::And, 8, 8, 3);
                b.alu(AluOp::Add, 8, 8, 4);
                b.ld(d, 8, 0);
            }
            BodyOp::Store(s) => {
                // Store to the OUT region, strided by iteration.
                b.alui(AluOp::Mul, 8, 1, 8);
                b.alui(AluOp::And, 8, 8, 0xFFF);
                b.alu(AluOp::Add, 8, 8, 5);
                b.st(s, 8, 0);
            }
            BodyOp::Hammock(c, a, x) => {
                let else_ = b.label();
                let join = b.label();
                b.br(c, a, x, else_);
                b.alui(AluOp::Add, 9, 9, 1);
                b.jmp(join);
                b.bind(else_);
                b.alui(AluOp::Xor, 9, 9, 3);
                b.bind(join);
            }
            BodyOp::Accumulate(d, s) => {
                b.alu(AluOp::Add, d, d, s);
            }
        }
    }
    b.alui(AluOp::Add, 6, 6, 8);
    b.alui(AluOp::Add, 1, 1, 1);
    b.br(Cond::Lt, 1, 2, top);
    b.halt();
    b.finish()
}

fn data_mem(seed: u64) -> MemImage {
    let mut mem = MemImage::new();
    let mut x = seed | 1;
    for i in 0..128u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mem.write(DATA_BASE as u64 + i * 8, x & 0xFF);
    }
    mem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_cosim_in_every_mode(
        ops in prop::collection::vec(body_op(), 1..12),
        iters in 16u16..150,
        seed in any::<u64>(),
    ) {
        let prog = build(&ops, iters);
        let mem = data_mem(seed);

        let mut emu = Emulator::new(mem.clone());
        emu.run(&prog, 10_000_000);
        prop_assert!(emu.halted, "generated program must halt");

        for mode in [Mode::Scalar, Mode::Ci, Mode::Vect] {
            let mut cfg = SimConfig::paper_baseline()
                .with_mode(mode)
                .with_regs(RegFileSize::Finite(256))
                .with_max_insts(u64::MAX >> 1);
            cfg.cosim_check = true; // the oracle panics on any divergence
            let mut pipe = Pipeline::new(&prog, mem.clone(), cfg);
            prop_assert_eq!(pipe.run(), RunExit::Halted);
            for r in 0..64u8 {
                prop_assert_eq!(pipe.arch_reg(r), emu.reg(r), "r{} in {:?}", r, mode);
            }
            // Committed memory must match too (stores).
            for i in 0..64u64 {
                let a = OUT_BASE as u64 + i * 8;
                prop_assert_eq!(pipe.memory().read(a), emu.mem.read(a));
            }
        }
    }

    #[test]
    fn stride_predictor_never_lies_about_trust(
        addrs in prop::collection::vec(0u64..1_000_000, 2..100),
    ) {
        // After any observation sequence, a trusted prediction must be
        // consistent with the recorded last address and stride.
        let mut sp = cfir::predict::StridePredictor::paper();
        for &a in &addrs {
            sp.observe(0x40, a);
        }
        if let Some(e) = sp.lookup(0x40) {
            if e.trusted() {
                prop_assert_eq!(e.predict(0), e.last_addr);
                prop_assert_eq!(e.predict(2), e.last_addr.wrapping_add((e.stride as u64).wrapping_mul(2)));
            }
            prop_assert_eq!(e.last_addr, *addrs.last().unwrap());
        }
    }

    #[test]
    fn write_masks_cover_every_written_register(
        dests in prop::collection::vec(1u8..64, 1..40),
    ) {
        // The NRBQ/CRP mask discipline: after writes, every written
        // register must test non-CI and untouched ones CI.
        let mut crp = cfir::core::Crp::new();
        crp.activate(0, 0, 0);
        crp.on_fetch(0);
        for &d in &dests {
            crp.on_dest_write(d, false);
        }
        for &d in &dests {
            prop_assert!(!crp.is_control_independent([Some(d), None]));
        }
        for r in 1u8..64 {
            if !dests.contains(&r) {
                prop_assert!(crp.is_control_independent([Some(r), None]));
            }
        }
    }
}
