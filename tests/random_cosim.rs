//! Randomized co-simulation: randomly generated (terminating) programs
//! must produce the same architectural state on the golden emulator and
//! on the out-of-order core in every machine mode — including with the
//! full CI/DV mechanism speculating over them.
//!
//! Plain seeded-`Rng64` tests (no proptest): deterministic, offline.

use cfir::prelude::*;
use cfir_isa::{AluOp, Cond};

const DATA_BASE: i64 = 0x2_0000;
const OUT_BASE: i64 = 0x8_0000;
const DATA_MASK: i64 = 0x3FF; // 128 words

/// One step of the random loop body.
#[derive(Debug, Clone)]
enum BodyOp {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluOp, u8, u8, i8),
    LoadStrided(u8),
    LoadIndexed(u8, u8),
    Store(u8),
    Hammock(Cond, u8, u8),
    Accumulate(u8, u8),
}

const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Slt,
    AluOp::Div,
];
const CONDS: [Cond; 4] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];

/// Work registers r10..r25; the harness owns r1..r9.
fn reg(rng: &mut Rng64) -> u8 {
    rng.gen_range_incl(10, 25) as u8
}

fn body_op(rng: &mut Rng64) -> BodyOp {
    let op = ALU_OPS[rng.gen_range(0, 10) as usize];
    match rng.gen_range(0, 7) {
        0 => BodyOp::Alu(op, reg(rng), reg(rng), reg(rng)),
        1 => BodyOp::AluImm(op, reg(rng), reg(rng), rng.next_u64() as i8),
        2 => BodyOp::LoadStrided(reg(rng)),
        3 => BodyOp::LoadIndexed(reg(rng), reg(rng)),
        4 => BodyOp::Store(reg(rng)),
        5 => BodyOp::Hammock(CONDS[rng.gen_range(0, 4) as usize], reg(rng), reg(rng)),
        _ => BodyOp::Accumulate(reg(rng), reg(rng)),
    }
}

/// Build a terminating program: `iters` iterations of a random body
/// over a masked index, then halt. Register conventions: r1 = iteration
/// counter, r2 = limit, r3 = mask, r4 = data base, r5 = out base,
/// r6 = byte offset of the strided cursor.
fn build(ops: &[BodyOp], iters: u16) -> Program {
    let mut b = ProgramBuilder::new("prop");
    b.li(1, 0);
    b.li(2, iters as i64);
    b.li(3, DATA_MASK);
    b.li(4, DATA_BASE);
    b.li(5, OUT_BASE);
    b.li(6, 0);
    let top = b.label_here();
    // Strided cursor: r7 = data_base + (r6 & mask)
    b.alu(AluOp::And, 7, 6, 3);
    b.alu(AluOp::Add, 7, 7, 4);
    for op in ops {
        match *op {
            BodyOp::Alu(o, d, s1, s2) => {
                b.alu(o, d, s1, s2);
            }
            BodyOp::AluImm(o, d, s, imm) => {
                b.alui(o, d, s, imm as i64);
            }
            BodyOp::LoadStrided(d) => {
                b.ld(d, 7, 0);
            }
            BodyOp::LoadIndexed(d, idx) => {
                // r8 = base + ((idx*8) & mask): arbitrary but in-bounds.
                b.alui(AluOp::Mul, 8, idx, 8);
                b.alu(AluOp::And, 8, 8, 3);
                b.alu(AluOp::Add, 8, 8, 4);
                b.ld(d, 8, 0);
            }
            BodyOp::Store(s) => {
                // Store to the OUT region, strided by iteration.
                b.alui(AluOp::Mul, 8, 1, 8);
                b.alui(AluOp::And, 8, 8, 0xFFF);
                b.alu(AluOp::Add, 8, 8, 5);
                b.st(s, 8, 0);
            }
            BodyOp::Hammock(c, a, x) => {
                let else_ = b.label();
                let join = b.label();
                b.br(c, a, x, else_);
                b.alui(AluOp::Add, 9, 9, 1);
                b.jmp(join);
                b.bind(else_);
                b.alui(AluOp::Xor, 9, 9, 3);
                b.bind(join);
            }
            BodyOp::Accumulate(d, s) => {
                b.alu(AluOp::Add, d, d, s);
            }
        }
    }
    b.alui(AluOp::Add, 6, 6, 8);
    b.alui(AluOp::Add, 1, 1, 1);
    b.br(Cond::Lt, 1, 2, top);
    b.halt();
    b.finish()
}

fn data_mem(seed: u64) -> MemImage {
    let mut mem = MemImage::new();
    let mut x = seed | 1;
    for i in 0..128u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mem.write(DATA_BASE as u64 + i * 8, x & 0xFF);
    }
    mem
}

#[test]
fn random_programs_cosim_in_every_mode() {
    let mut rng = Rng64::seed_from_u64(0xC0512);
    for case in 0..24 {
        let n = rng.gen_range(1, 12) as usize;
        let ops: Vec<BodyOp> = (0..n).map(|_| body_op(&mut rng)).collect();
        let iters = rng.gen_range(16, 150) as u16;
        let seed = rng.next_u64();
        let prog = build(&ops, iters);
        let mem = data_mem(seed);

        let mut emu = Emulator::new(mem.clone());
        emu.run(&prog, 10_000_000);
        assert!(emu.halted, "case {case}: generated program must halt");

        for mode in [Mode::Scalar, Mode::Ci, Mode::Vect] {
            let mut cfg = SimConfig::paper_baseline()
                .with_mode(mode)
                .with_regs(RegFileSize::Finite(256))
                .with_max_insts(u64::MAX >> 1);
            cfg.cosim_check = true; // the oracle panics on any divergence
            let mut pipe = Pipeline::new(&prog, mem.clone(), cfg);
            assert_eq!(pipe.run(), RunExit::Halted, "case {case} {mode:?}");
            for r in 0..64u8 {
                assert_eq!(
                    pipe.arch_reg(r),
                    emu.reg(r),
                    "case {case}: r{r} in {mode:?} (ops {ops:?})"
                );
            }
            // Committed memory must match too (stores).
            for i in 0..64u64 {
                let a = OUT_BASE as u64 + i * 8;
                assert_eq!(
                    pipe.memory().read(a),
                    emu.mem.read(a),
                    "case {case} mem {a:#x}"
                );
            }
        }
    }
}

#[test]
fn stride_predictor_never_lies_about_trust() {
    let mut rng = Rng64::seed_from_u64(0x57AB1E);
    for _ in 0..100 {
        // After any observation sequence, a trusted prediction must be
        // consistent with the recorded last address and stride.
        let n = rng.gen_range(2, 100) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 1_000_000)).collect();
        let mut sp = cfir::predict::StridePredictor::paper();
        for &a in &addrs {
            sp.observe(0x40, a);
        }
        if let Some(e) = sp.lookup(0x40) {
            if e.trusted() {
                assert_eq!(e.predict(0), e.last_addr);
                assert_eq!(
                    e.predict(2),
                    e.last_addr.wrapping_add((e.stride as u64).wrapping_mul(2))
                );
            }
            assert_eq!(e.last_addr, *addrs.last().unwrap());
        }
    }
}

#[test]
fn write_masks_cover_every_written_register() {
    let mut rng = Rng64::seed_from_u64(0x3A5C);
    for _ in 0..100 {
        // The NRBQ/CRP mask discipline: after writes, every written
        // register must test non-CI and untouched ones CI.
        let n = rng.gen_range(1, 40) as usize;
        let dests: Vec<u8> = (0..n).map(|_| rng.gen_range(1, 64) as u8).collect();
        let mut crp = cfir::core::Crp::new();
        crp.activate(0, 0, 0);
        crp.on_fetch(0);
        for &d in &dests {
            crp.on_dest_write(d, false);
        }
        for &d in &dests {
            assert!(!crp.is_control_independent([Some(d), None]));
        }
        for r in 1u8..64 {
            if !dests.contains(&r) {
                assert!(crp.is_control_independent([Some(r), None]));
            }
        }
    }
}
