//! Co-simulation across the whole suite: every synthetic benchmark runs
//! on the out-of-order core in every machine mode with the golden-model
//! check enabled at every commit. Any speculation bug — wrong-path
//! leakage, bad reuse, forwarding error — fails loudly here.

use cfir::prelude::*;

fn cfg(mode: Mode) -> SimConfig {
    let mut c = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(25_000);
    c.cosim_check = true;
    c
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        iters: 1 << 30,
        elems: 1024,
        seed: 0xABCD,
    }
}

#[test]
fn every_benchmark_cosims_in_every_mode() {
    for w in suite(spec()) {
        for mode in [
            Mode::Scalar,
            Mode::WideBus,
            Mode::CiIw,
            Mode::Ci,
            Mode::Vect,
        ] {
            let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), cfg(mode));
            let exit = pipe.run();
            assert_eq!(
                exit,
                RunExit::InstBudget,
                "{} in {mode:?} must run to the instruction budget",
                w.name
            );
            assert!(
                pipe.stats.ipc() > 0.01,
                "{} in {mode:?}: implausible IPC {}",
                w.name,
                pipe.stats.ipc()
            );
        }
    }
}

#[test]
fn architectural_results_identical_across_modes() {
    // Run each benchmark to completion (small iteration count) in every
    // mode and compare the full architectural register file against the
    // emulator's.
    let spec = WorkloadSpec {
        iters: 400,
        elems: 256,
        seed: 0x5EED,
    };
    for w in suite(spec) {
        let mut emu = Emulator::new(w.mem.clone());
        emu.run(&w.prog, 50_000_000);
        assert!(emu.halted, "{}: emulator must halt", w.name);
        for mode in [
            Mode::Scalar,
            Mode::WideBus,
            Mode::CiIw,
            Mode::Ci,
            Mode::Vect,
        ] {
            let mut c = cfg(mode).with_max_insts(u64::MAX >> 1);
            c.cosim_check = true;
            let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
            assert_eq!(pipe.run(), RunExit::Halted, "{} in {mode:?}", w.name);
            for r in 0..64u8 {
                assert_eq!(
                    pipe.arch_reg(r),
                    emu.reg(r),
                    "{} in {mode:?}: r{r} diverged",
                    w.name
                );
            }
        }
    }
}

#[test]
fn unbounded_register_file_runs() {
    let w = by_name("crafty", spec()).unwrap();
    let mut c = SimConfig::paper_baseline()
        .with_mode(Mode::Ci)
        .with_regs(RegFileSize::Infinite)
        .with_max_insts(20_000);
    c.cosim_check = true;
    let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
    assert_eq!(pipe.run(), RunExit::InstBudget);
    assert!(pipe.stats.reg_high_water > 64);
}

#[test]
fn smallest_register_file_runs_under_pressure() {
    // 128 physical registers with a 256-entry window: rename starves,
    // and in ci mode replicas compete for the same registers. Must stay
    // correct (the paper's 128-register points in Figures 9/11/13).
    for mode in [Mode::WideBus, Mode::Ci] {
        let w = by_name("bzip2", spec()).unwrap();
        let mut c = SimConfig::paper_baseline()
            .with_mode(mode)
            .with_regs(RegFileSize::Finite(128))
            .with_max_insts(15_000);
        c.cosim_check = true;
        let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
        assert_eq!(pipe.run(), RunExit::InstBudget, "{mode:?}");
    }
}

#[test]
fn speculative_data_memory_mode_cosims() {
    for positions in [128usize, 768] {
        let w = by_name("parser", spec()).unwrap();
        let mut c = SimConfig::paper_baseline()
            .with_mode(Mode::Ci)
            .with_regs(RegFileSize::Finite(256))
            .with_max_insts(20_000);
        c.mech = cfir::core::MechConfig::paper_with_specmem(positions);
        c.cosim_check = true;
        let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
        assert_eq!(pipe.run(), RunExit::InstBudget, "ci-h-{positions}");
    }
}

#[test]
fn replica_count_sweep_cosims() {
    for reps in [1u8, 2, 4, 8] {
        let w = by_name("twolf", spec()).unwrap();
        let mut c = cfg(Mode::Ci).with_replicas(reps).with_max_insts(20_000);
        c.cosim_check = true;
        let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
        assert_eq!(pipe.run(), RunExit::InstBudget, "{reps} replicas");
    }
}
