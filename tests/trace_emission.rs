//! End-to-end tracing acceptance: `CFIR_TRACE` drives the `cfir-run`
//! binary to produce Chrome-trace and JSONL files, and tracing must
//! not perturb the simulation (identical `--emit-json` snapshots with
//! and without a tracer attached).
//!
//! Each configuration runs in its own child process because the trace
//! environment is parsed once per process.

use cfir::obs::json;
use std::path::PathBuf;
use std::process::Command;

const PROG: &str = "\
    li   r1, 0\n\
    li   r6, 3200\n\
loop:\n\
    ld   r8, 1000(r1)\n\
    beq  r8, r0, else_\n\
    addi r2, r2, 1\n\
    jmp  ip\n\
else_:\n\
    addi r3, r3, 1\n\
ip:\n\
    add  r4, r4, r8\n\
    addi r1, r1, 8\n\
    blt  r1, r6, loop\n\
    halt\n";

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cfir-trace-test-{}-{name}", std::process::id()))
}

/// Run `cfir-run <asm> --mode ci --emit-json` with a scrubbed trace
/// environment plus `trace_env`, returning stdout.
fn run(asm: &PathBuf, trace_env: Option<&str>) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cfir-run"));
    cmd.arg(asm).args(["--mode", "ci", "--emit-json"]);
    cmd.env_remove("CFIR_TRACE")
        .env_remove("CFIR_DEBUG")
        .env_remove("CFIR_CSTREAM");
    if let Some(spec) = trace_env {
        cmd.env("CFIR_TRACE", spec);
    }
    let out = cmd.output().expect("cfir-run spawns");
    assert!(
        out.status.success(),
        "cfir-run failed (trace={trace_env:?}): {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn tracing_emits_files_without_perturbing_the_run() {
    let asm = tmp("prog.asm");
    std::fs::write(&asm, PROG).unwrap();
    let chrome = tmp("trace.json");
    let jsonl = tmp("trace.jsonl");

    // Baseline: no tracing.
    let base = run(&asm, None);
    let v = json::parse(base.trim()).expect("baseline snapshot parses");
    assert!(v.get("ipc").and_then(|x| x.as_f64()).unwrap() > 0.0);
    assert!(v.get("cycles").and_then(|x| x.as_u64()).unwrap() > 0);

    // Chrome-trace run: identical snapshot, plus a Perfetto-loadable
    // trace file.
    let spec = format!("sub=vec+commit+flush sink=chrome:{}", chrome.display());
    let traced = run(&asm, Some(&spec));
    assert_eq!(
        base, traced,
        "a chrome tracer must not change any statistic"
    );
    let doc = std::fs::read_to_string(&chrome).expect("chrome trace written");
    let t = json::parse(&doc).expect("chrome trace is valid JSON");
    let events = t
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let real: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
        .collect();
    assert!(!real.is_empty(), "filtered run must emit events");
    for e in real.iter().take(50) {
        assert!(e.get("name").is_some() && e.get("ts").is_some() && e.get("pid").is_some());
        let cat = e.get("cat").and_then(|c| c.as_str()).unwrap();
        assert!(
            ["vec", "commit", "flush"].contains(&cat),
            "sub filter respected, got {cat}"
        );
    }

    // JSONL run: every line is one parseable event object.
    let spec = format!("sub=commit cycle=0..2000 sink=jsonl:{}", jsonl.display());
    let traced = run(&asm, Some(&spec));
    assert_eq!(base, traced, "a jsonl tracer must not change any statistic");
    let lines: Vec<String> = std::fs::read_to_string(&jsonl)
        .unwrap()
        .lines()
        .map(|l| l.to_string())
        .collect();
    assert!(!lines.is_empty(), "commit stream must produce events");
    for l in &lines {
        let e = json::parse(l).expect("each JSONL line parses");
        assert!(
            e.get("cycle").and_then(|c| c.as_u64()).unwrap() < 2000,
            "cycle filter respected"
        );
        assert_eq!(e.get("sub").and_then(|s| s.as_str()), Some("commit"));
    }

    for p in [asm, chrome, jsonl] {
        let _ = std::fs::remove_file(p);
    }
}
