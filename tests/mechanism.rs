//! Behavioural assertions about the CI/DV mechanism itself — the
//! paper's qualitative claims, checked on the synthetic suite.

use cfir::prelude::*;

fn run(name: &str, mode: Mode, insts: u64) -> SimStats {
    let w = by_name(
        name,
        WorkloadSpec {
            iters: 1 << 30,
            elems: 4096,
            seed: 0xFEED,
        },
    )
    .unwrap();
    let mut c = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(insts);
    c.cosim_check = true;
    let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
    pipe.run();
    pipe.stats.clone()
}

#[test]
fn ci_reuses_on_the_figure1_workload() {
    let s = run("bzip2", Mode::Ci, 60_000);
    assert!(s.committed_reuse > 0, "must reuse precomputed results");
    assert!(
        s.reuse_fraction() > 0.05,
        "reuse fraction {:.3} too low for the mechanism's best case",
        s.reuse_fraction()
    );
    assert!(s.replicas_executed > 1000, "the replica engine must run");
    assert!(s.vectorizations > 0);
}

#[test]
fn ci_beats_the_baseline_where_branches_are_hard() {
    // The paper's headline on its motivating shape: hammocks over
    // random data with strided loads.
    for name in ["bzip2", "twolf", "crafty", "parser"] {
        let base = run(name, Mode::WideBus, 60_000);
        let ci = run(name, Mode::Ci, 60_000);
        assert!(
            ci.ipc() > base.ipc() * 1.02,
            "{name}: ci {:.3} must beat wb {:.3}",
            ci.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn events_classify_mispredictions() {
    let s = run("bzip2", Mode::Ci, 60_000);
    let (nf, sel, reu) = s.events.fractions();
    assert!(s.events.total_mispredictions > 100);
    // Figure 5's shape: most mispredictions find CI instructions, and a
    // large share achieve reuse.
    assert!(
        sel + reu > 0.5,
        "selected {sel:.2} + reused {reu:.2} too low"
    );
    assert!(reu > 0.03, "reused fraction {reu:.2} too low");
    assert!(nf < 0.5, "not-found fraction {nf:.2} too high");
}

#[test]
fn mcf_finds_ci_but_cannot_vectorize() {
    // Pointer chasing: CI instructions exist, but no strided backward
    // slice — the gray bucket of Figure 5.
    let s = run("mcf", Mode::Ci, 25_000);
    let (_, sel, reu) = s.events.fractions();
    assert!(sel > 0.3, "CI selection must still happen: {sel:.2}");
    assert!(reu < 0.1, "but stride-based reuse cannot: {reu:.2}");
    assert!(s.committed_reuse < s.committed / 100);
}

#[test]
fn biased_branches_keep_the_mechanism_quiet() {
    // gzip's branches are ~94/6: the MBS classifies them easy, so far
    // fewer misprediction events activate the scheme per instruction.
    let gzip = run("gzip", Mode::Ci, 60_000);
    let bzip2 = run("bzip2", Mode::Ci, 60_000);
    let gzip_rate = gzip.events.total_mispredictions as f64 / gzip.committed as f64;
    let bzip2_rate = bzip2.events.total_mispredictions as f64 / bzip2.committed as f64;
    assert!(
        gzip_rate < bzip2_rate / 3.0,
        "gzip {gzip_rate:.4} vs bzip2 {bzip2_rate:.4}"
    );
}

#[test]
fn vect_generates_at_least_as_much_speculation_as_ci() {
    // Full-blown vectorization speculates on every trusted strided
    // load; the CI scheme gates on hard-branch selection.
    let mut vect_total = 0u64;
    let mut ci_total = 0u64;
    for name in ["gzip", "eon", "vortex"] {
        vect_total += run(name, Mode::Vect, 40_000).replicas_created;
        ci_total += run(name, Mode::Ci, 40_000).replicas_created;
    }
    assert!(
        vect_total >= ci_total,
        "vect {vect_total} must speculate at least as much as ci {ci_total}"
    );
}

#[test]
fn squash_reuse_stays_inside_the_window() {
    // ci-iw never pre-executes: no replicas, only wrong-path harvest.
    let s = run("bzip2", Mode::CiIw, 60_000);
    assert_eq!(s.replicas_executed, 0);
    assert_eq!(s.replicas_created, 0);
    assert!(s.squash_reuse_hits > 0, "squash reuse must hit");
    assert!(s.committed_reuse > 0);
}

#[test]
fn store_coherence_fires_on_twolf() {
    // twolf stores into the speculatively-loaded array every 64th
    // iteration (§2.4.3's hazard).
    let s = run("twolf", Mode::Ci, 80_000);
    assert!(s.store_conflicts > 0, "coherence check must fire");
    assert!(
        s.store_conflict_fraction() < 0.2,
        "but conflicts must stay rare: {:.3}",
        s.store_conflict_fraction()
    );
}

#[test]
fn daec_bounds_register_occupancy() {
    let w = by_name(
        "crafty",
        WorkloadSpec {
            iters: 1 << 30,
            elems: 4096,
            seed: 1,
        },
    )
    .unwrap();
    let mut with_daec = SimConfig::paper_baseline()
        .with_mode(Mode::Ci)
        .with_regs(RegFileSize::Infinite)
        .with_max_insts(40_000);
    with_daec.cosim_check = false;
    let mut without = with_daec.clone();
    without.mech.daec_threshold = u8::MAX;
    let mut a = Pipeline::new(&w.prog, w.mem.clone(), with_daec);
    a.run();
    let mut b = Pipeline::new(&w.prog, w.mem.clone(), without);
    b.run();
    assert!(
        a.stats.avg_regs_in_use() <= b.stats.avg_regs_in_use(),
        "DAEC on {:.0} must not use more registers than off {:.0}",
        a.stats.avg_regs_in_use(),
        b.stats.avg_regs_in_use()
    );
}

#[test]
fn more_replicas_more_speculative_work() {
    let one = run("parser", Mode::Ci, 40_000);
    let eight = {
        let w = by_name(
            "parser",
            WorkloadSpec {
                iters: 1 << 30,
                elems: 4096,
                seed: 0xFEED,
            },
        )
        .unwrap();
        let mut c = SimConfig::paper_baseline()
            .with_mode(Mode::Ci)
            .with_regs(RegFileSize::Finite(512))
            .with_replicas(8)
            .with_max_insts(40_000);
        c.cosim_check = true;
        let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), c);
        pipe.run();
        pipe.stats.clone()
    };
    assert!(
        eight.replicas_created > one.replicas_created / 2,
        "8-replica windows must sustain speculative work"
    );
}

#[test]
fn wide_bus_reduces_l1_accesses() {
    // Figure 8's first-order effect: one wide access serves several
    // same-line loads.
    let scal = run("vortex", Mode::Scalar, 40_000);
    let wb = run("vortex", Mode::WideBus, 40_000);
    assert!(
        wb.l1d_accesses < scal.l1d_accesses,
        "wb {} must access L1 less than scal {}",
        wb.l1d_accesses,
        scal.l1d_accesses
    );
}
