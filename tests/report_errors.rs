//! `cfir-report` must never panic on damaged input: every load path
//! prints the offending file's path to stderr and exits nonzero
//! (exit 2 = usage/IO error), for a truncated schema-v7 snapshot, junk
//! that isn't JSON at all, and well-formed JSON of the wrong shape.

use std::path::PathBuf;
use std::process::Command;

fn report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cfir-report"))
        .args(args)
        .output()
        .expect("spawn cfir-report")
}

fn write_tmp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cfir-report-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write test input");
    path
}

/// The committed schema-v7 baseline bundle, cut off mid-document — the
/// shape a crashed or still-writing producer leaves behind.
fn truncated_snapshot() -> PathBuf {
    let full = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/baselines/smoke.json"
    ))
    .expect("committed baseline present");
    assert!(full.contains("\"schema_version\":7"), "baseline moved on");
    write_tmp("truncated.json", &full[..full.len() / 2])
}

fn assert_clean_failure(out: &std::process::Output, path: &std::path::Path, what: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{what}: want exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains(path.to_str().unwrap()),
        "{what}: stderr must name the offending file\nstderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{what}: must fail cleanly, not panic\nstderr: {stderr}"
    );
}

#[test]
fn truncated_snapshot_fails_cleanly_on_every_subcommand() {
    let bad = truncated_snapshot();
    let good = concat!(env!("CARGO_MANIFEST_DIR"), "/results/baselines/smoke.json");
    let bad_s = bad.to_str().unwrap();
    for args in [
        vec![bad_s],
        vec!["check", bad_s, good],
        vec!["check", good, bad_s],
        vec!["diff", good, bad_s],
        vec!["bottleneck", bad_s],
        vec!["bottleneck", good, bad_s],
        vec!["cidi", bad_s],
        vec!["sampling", bad_s],
    ] {
        let out = report(&args);
        assert_clean_failure(&out, &bad, &args.join(" "));
    }
}

#[test]
fn non_json_and_wrong_shape_fail_cleanly() {
    let junk = write_tmp("junk.json", "not json at all\x00\x01");
    assert_clean_failure(&report(&[junk.to_str().unwrap()]), &junk, "junk");

    // Valid JSON, but no schema_version: rejected at parse_doc.
    let shape = write_tmp("shape.json", r#"{"runs": []}"#);
    assert_clean_failure(&report(&[shape.to_str().unwrap()]), &shape, "no schema");

    // Valid v7 envelope with an empty runs array: the renderers must
    // error out, not index-panic.
    let empty = write_tmp("empty.json", r#"{"schema_version": 7, "runs": []}"#);
    let es = empty.to_str().unwrap();
    for args in [vec!["cidi", es], vec!["sampling", es]] {
        let out = report(&args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_ne!(out.status.code(), Some(0), "{args:?} must fail");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
    }

    let missing = std::env::temp_dir().join("cfir-report-test-definitely-absent.json");
    assert_clean_failure(
        &report(&[missing.to_str().unwrap()]),
        &missing,
        "missing file",
    );
}
