//! Byte-exact differential gate over the full kernel × mode matrix.
//!
//! The hot-path data structures (flat arrays, rings, arenas — see
//! DESIGN.md "Hot-path data structures") are pure mechanical speedups:
//! they must not move a single counter. This test pins that property
//! by running all 12 kernels in the 4 paper modes and comparing the
//! complete schema-v7 snapshot (stats, stall breakdown, histograms,
//! lifecycle, bottleneck, oracle and dataflow-oracle objects) byte for
//! byte against `results/baselines/differential.jsonl`.
//!
//! When a change *intentionally* moves the numbers, regenerate the
//! baseline (and review the diff) with:
//!
//! ```sh
//! CFIR_UPDATE_BASELINES=1 cargo test --test differential_gate
//! ```
//!
//! `scripts/refresh-baselines.sh` runs the same command.

use cfir::prelude::*;
use cfir::sim::run_json;
use cfir_workloads::NAMES;
use std::path::PathBuf;

/// The paper's four machine variants (same set as `exp_bottleneck`).
const MODES: [Mode; 4] = [Mode::Scalar, Mode::WideBus, Mode::Ci, Mode::Vect];

/// Committed-instruction budget per run: big enough that every
/// mechanism path (selection, replicas, squash reuse, misspec
/// blacklisting, DAEC) fires on at least some kernels, small enough
/// that the full 48-cell matrix stays cheap in debug builds.
const INSTS: u64 = 10_000;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/baselines/differential.jsonl")
}

fn gate_config(mode: Mode) -> SimConfig {
    // Lifecycle recording on, so the gate also pins the per-instruction
    // recorder and the bottleneck DAG (critical path, what-ifs) that
    // are derived from it. Intervals on, so the time series is pinned.
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(mode)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(INSTS)
        .with_lifecycle();
    cfg.cosim_check = false;
    cfg.interval_cycles = 10_000;
    cfg
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        iters: 1 << 30,
        elems: 1 << 12,
        seed: 0xC0FFEE,
    }
}

/// One snapshot per (kernel, mode), in fixed matrix order.
fn generate_all() -> Vec<String> {
    let mut out: Vec<Option<String>> = vec![None; NAMES.len()];
    // Each kernel is independent; fan the 12 kernels out across
    // threads (each runs its 4 modes serially) to keep the gate quick.
    std::thread::scope(|s| {
        for (slot, name) in out.iter_mut().zip(NAMES) {
            s.spawn(move || {
                let w = by_name(name, spec()).expect("known kernel");
                let mut lines = String::new();
                for mode in MODES {
                    let mut p = Pipeline::new(&w.prog, w.mem.clone(), gate_config(mode));
                    p.run();
                    lines.push_str(&run_json(w.name, mode.label(), &p.stats));
                    lines.push('\n');
                }
                *slot = Some(lines);
            });
        }
    });
    out.into_iter()
        .flat_map(|s| {
            s.expect("kernel thread finished")
                .lines()
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn snapshots_are_byte_identical_to_committed_baselines() {
    let path = baseline_path();
    let fresh = generate_all();
    assert_eq!(fresh.len(), NAMES.len() * MODES.len());

    if std::env::var_os("CFIR_UPDATE_BASELINES").is_some() {
        let mut doc = String::new();
        for line in &fresh {
            doc.push_str(line);
            doc.push('\n');
        }
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, doc).unwrap();
        eprintln!(
            "differential gate: baseline rewritten at {}",
            path.display()
        );
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(regenerate with CFIR_UPDATE_BASELINES=1 \
             cargo test --test differential_gate)",
            path.display()
        )
    });
    let committed: Vec<&str> = committed.lines().collect();
    assert_eq!(
        committed.len(),
        fresh.len(),
        "baseline row count mismatch — regenerate with CFIR_UPDATE_BASELINES=1"
    );
    let mut drifted = Vec::new();
    for (i, (want, got)) in committed.iter().zip(&fresh).enumerate() {
        if want != got {
            let kernel = NAMES[i / MODES.len()];
            let mode = MODES[i % MODES.len()].label();
            // Locate the first differing byte for the failure message.
            let at = want
                .bytes()
                .zip(got.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| want.len().min(got.len()));
            let lo = at.saturating_sub(40);
            drifted.push(format!(
                "{kernel}/{mode}: first divergence at byte {at}:\n  baseline: …{}…\n  fresh:    …{}…",
                &want[lo..(at + 40).min(want.len())],
                &got[lo..(at + 40).min(got.len())],
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} of {} snapshots drifted from the committed baseline:\n{}\n\
         If this change is intentional, regenerate with \
         CFIR_UPDATE_BASELINES=1 cargo test --test differential_gate",
        drifted.len(),
        fresh.len(),
        drifted.join("\n")
    );
}
