#!/usr/bin/env bash
# Regenerate the committed perf baselines in results/baselines/.
#
# The simulator is deterministic (seeded workloads), so for a fixed
# CFIR_INSTS these snapshots are exactly reproducible; CI's perf-gate
# job reruns the same commands and compares fresh output against the
# committed files with `cfir-report check`. Rerun this script (and
# commit the result) whenever a change intentionally moves the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

export CFIR_INSTS="${CFIR_INSTS:-20000}"

cargo build --release --workspace
mkdir -p results/baselines

# The smoke profile (per-mode run snapshots of the smoke benchmark +
# the machine-configuration table) through the suite orchestrator; a
# failed or timed-out job makes cfir-suite exit non-zero, which stops
# this script before anything is copied over the committed baselines.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
# The smoke profile plus the sampling-accuracy experiment in one
# invocation, so BENCH_6.json records the sampled wall-clock alongside
# the full runs (exp_sampling pins its own instruction budgets and
# ignores CFIR_INSTS; its aggregator fails the suite — and therefore
# this script — when any kernel misses the ±3%/CI accuracy gate).
./target/release/cfir-suite table1 smoke exp_sampling --jobs 2 --emit-json \
  --bench-json BENCH_6.json --out-dir "$tmp" --quiet

# Snapshot bundle (current schema): the perf gate.
cp "$tmp/smoke.json" results/baselines/smoke.json
# Machine-configuration table (a drift gate, not a perf gate).
cp "$tmp/table1.json" results/baselines/table1.json
# Sampled-vs-full accuracy table (window counts, estimates,
# half-widths); CI compares byte-for-byte.
cp "$tmp/exp_sampling.csv" results/baselines/sampling.csv

# The bottleneck experiment: 12 kernels x 4 paper modes with lifecycle
# recording, plus the 12 oracle-BP validation runs. Its aggregator
# already gates dropped records, projection bounds and oracle ratios,
# so reaching this cp means the analysis is self-consistent.
./target/release/cfir-suite exp_bottleneck --jobs 2 --emit-json \
  --out-dir "$tmp" --quiet
cp "$tmp/exp_bottleneck.json" results/baselines/bottleneck.json
cp "$tmp/exp_bottleneck_validation.csv" \
  results/baselines/bottleneck_validation.csv

# The CIDI dataflow-oracle experiment: 12 kernels x 4 modes scoring
# static CIDI/CIDD verdicts against runtime reuse outcomes. The
# aggregator gates the agreement floor and the zero-failure rule for
# regular-access kernels before anything is copied.
./target/release/cfir-suite exp_cidi --jobs 2 --emit-json \
  --out-dir "$tmp" --quiet
cp "$tmp/exp_cidi.csv" results/baselines/cidi.csv
cp "$tmp/exp_cidi_validation.csv" results/baselines/cidi_validation.csv

# Static-analysis reports for every kernel (lints + RCP agreement).
# CI reruns `cfir-analyze --all --check --baseline` against this file.
./target/release/cfir-analyze --all --emit-json results/baselines/analyze.json

# Throughput floor for the CI perf gate: detailed-core insts/sec over
# the smoke profile, single worker, fresh cache each run (cache hits
# carry no wall clock and would zero the measurement). Both this
# script and the CI step take the best of three runs, so the floor and
# the fresh number are each the machine's demonstrated peak and the
# gate's 10% tolerance only has to absorb residual noise, not
# cold-start outliers.
best=0
for _ in 1 2 3; do
  rm -rf "$tmp/perf-cache" "$tmp/perf-out"
  ./target/release/cfir-suite --profile smoke --jobs 1 --quiet \
    --cache-dir "$tmp/perf-cache" --out-dir "$tmp/perf-out" \
    --bench-json "$tmp/perf.json" > /dev/null
  best=$(python3 -c "import json,sys; \
    print(max(json.load(open('$tmp/perf.json'))['perf']['insts_per_sec'], float(sys.argv[1])))" \
    "$best")
done
printf '{"insts_per_sec_floor": %s, "profile": "smoke", "insts": %s, "jobs": 1, "runs": "best-of-3"}\n' \
  "$best" "$CFIR_INSTS" > results/baselines/perf_floor.json

echo "baselines refreshed (CFIR_INSTS=$CFIR_INSTS):"
ls -l results/baselines/
