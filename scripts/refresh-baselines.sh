#!/usr/bin/env bash
# Regenerate the committed perf baselines in results/baselines/.
#
# The simulator is deterministic (seeded workloads), so for a fixed
# CFIR_INSTS these snapshots are exactly reproducible; CI's perf-gate
# job reruns the same commands and compares fresh output against the
# committed files with `cfir-report check`. Rerun this script (and
# commit the result) whenever a change intentionally moves the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

export CFIR_INSTS="${CFIR_INSTS:-20000}"

cargo build --release --workspace
mkdir -p results/baselines

# Per-mode run snapshots of the smoke benchmark (schema v2 bundle).
./target/release/smoke bzip2 --emit-json results/baselines/smoke.json

# Machine-configuration table (a drift gate, not a perf gate).
./target/release/table1 --emit-json >/dev/null
cp results/table1.json results/baselines/table1.json

# Static-analysis reports for every kernel (lints + RCP agreement).
# CI reruns `cfir-analyze --all --check --baseline` against this file.
./target/release/cfir-analyze --all --emit-json results/baselines/analyze.json

echo "baselines refreshed (CFIR_INSTS=$CFIR_INSTS):"
ls -l results/baselines/
