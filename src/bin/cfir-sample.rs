//! `cfir-sample` — checkpointed statistical sampling from the command
//! line: run a kernel (or an assembled program) under SMARTS-style
//! systematic sampling, or replay one saved checkpoint as a detailed
//! window.
//!
//! ```sh
//! # Sampled run of a named kernel over a 1.5M-instruction budget.
//! cfir-sample gzip --insts 1500000 --period 50000 --warmup 3500 --window 4000
//!
//! # Same, persisting every window checkpoint for later replay.
//! cfir-sample gzip --insts 1500000 --ckpt-dir /tmp/ckpts
//!
//! # Replay one checkpoint as an independent detailed window.
//! cfir-sample replay /tmp/ckpts/<id>.ckpt gzip --warmup 3500 --window 4000
//! ```
//!
//! Options (sampled run):
//!
//! * `<kernel|prog.asm>` — a paper kernel name (`cfir-sample --list`)
//!   or a path to an assembly file;
//! * `--mode scal|wb|ci-iw|ci|vect` — machine variant (default `ci`);
//! * `--insts N` — total instruction budget (default 1\_500\_000);
//! * `--period N` / `--warmup N` / `--window N` — sampling unit:
//!   one detailed window of `window` instructions per `period`,
//!   preceded by `warmup` detailed (unmeasured) instructions
//!   (defaults 50\_000 / 3\_500 / 4\_000);
//! * `--max-windows N` — stop after N windows (0 = no cap);
//! * `--jitter N` — max forward shift per window, derived
//!   deterministically from checkpoint content (default 0);
//! * `--ckpt-dir DIR` — persist each window's checkpoint to DIR;
//! * `--regs N|inf` — physical register file size (default 512);
//! * `--emit-json [path.json]` — emit the schema-v7 snapshot (with
//!   the `sampling` object) instead of the table;
//! * `--full` — run the same budget fully detailed instead of sampled
//!   (the reference for accuracy/speedup comparisons).

use cfir::prelude::*;
use cfir_sample::{replay_window, run_sampled, Checkpoint, SamplingConfig};
use std::process::exit;

struct Args {
    target: String,
    mode: Mode,
    insts: u64,
    regs: RegFileSize,
    scfg: SamplingConfig,
    full: bool,
    emit_json: bool,
    emit_json_path: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cfir-sample <kernel|prog.asm> [--mode scal|wb|ci-iw|ci|vect] [--insts N]\n\
         \x20                 [--period N] [--warmup N] [--window N] [--max-windows N]\n\
         \x20                 [--jitter N] [--ckpt-dir DIR] [--regs N|inf]\n\
         \x20                 [--emit-json [path.json]] [--full]\n\
         \x20      cfir-sample replay <file.ckpt> <kernel|prog.asm> [--mode ...]\n\
         \x20                 [--warmup N] [--window N] [--regs N|inf]\n\
         \x20      cfir-sample --list\n\
         one detailed window of --window instructions is measured per --period,\n\
         after --warmup detailed warmup instructions; everything in between runs\n\
         on the functional emulator with predictor/cache warming.\n\
         `replay` re-executes a single saved checkpoint as a detailed window."
    );
    exit(2)
}

fn parse_common<I: Iterator<Item = String>>(
    a: &mut Args,
    arg: &str,
    it: &mut std::iter::Peekable<I>,
) -> bool {
    match arg {
        "--mode" => {
            a.mode = it
                .next()
                .as_deref()
                .and_then(Mode::from_label)
                .unwrap_or_else(|| usage())
        }
        "--warmup" => a.scfg.warmup = num(it),
        "--window" => a.scfg.window = num(it),
        "--regs" => {
            a.regs = match it.next().as_deref() {
                Some("inf") => RegFileSize::Infinite,
                Some(n) => RegFileSize::Finite(n.parse().unwrap_or_else(|_| usage())),
                None => usage(),
            }
        }
        _ => return false,
    }
    true
}

fn num<I: Iterator<Item = String>>(it: &mut std::iter::Peekable<I>) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn load_target(target: &str) -> (cfir::isa::Program, MemImage, String) {
    if target.ends_with(".asm") {
        let src = std::fs::read_to_string(target).unwrap_or_else(|e| {
            eprintln!("cannot read {target}: {e}");
            exit(1)
        });
        let prog = cfir::isa::assemble(target, &src).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
        let name = std::path::Path::new(target)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("prog")
            .to_string();
        (prog, MemImage::new(), name)
    } else {
        let w = cfir::workloads::by_name(target, cfir::workloads::WorkloadSpec::default())
            .unwrap_or_else(|| {
                eprintln!("unknown kernel {target:?} (try `cfir-sample --list`)");
                exit(1)
            });
        (w.prog, w.mem, w.name.to_string())
    }
}

fn main() {
    let mut raw = std::env::args().skip(1).peekable();
    match raw.peek().map(String::as_str) {
        Some("--list") => {
            for n in cfir::workloads::NAMES {
                println!("{n}");
            }
            return;
        }
        Some("replay") => {
            raw.next();
            return replay_main(raw);
        }
        None => usage(),
        _ => {}
    }

    let mut a = Args {
        target: String::new(),
        mode: Mode::Ci,
        insts: 1_500_000,
        regs: RegFileSize::Finite(512),
        scfg: SamplingConfig::default(),
        full: false,
        emit_json: false,
        emit_json_path: None,
    };
    while let Some(arg) = raw.next() {
        if parse_common(&mut a, &arg, &mut raw) {
            continue;
        }
        match arg.as_str() {
            "--insts" => a.insts = num(&mut raw),
            "--full" => a.full = true,
            "--period" => a.scfg.period = num(&mut raw),
            "--max-windows" => a.scfg.max_windows = num(&mut raw) as usize,
            "--jitter" => a.scfg.jitter = num(&mut raw),
            "--ckpt-dir" => {
                a.scfg.checkpoint_dir = Some(raw.next().unwrap_or_else(|| usage()).into())
            }
            "--emit-json" => {
                a.emit_json = true;
                if raw.peek().is_some_and(|n| n.ends_with(".json")) {
                    a.emit_json_path = raw.next();
                }
            }
            _ if a.target.is_empty() && !arg.starts_with('-') => a.target = arg,
            _ => usage(),
        }
    }
    if a.target.is_empty() {
        usage()
    }
    if a.scfg.period < a.scfg.warmup + a.scfg.window + a.scfg.jitter {
        eprintln!(
            "invalid sampling unit: period {} < warmup {} + window {} + jitter {}",
            a.scfg.period, a.scfg.warmup, a.scfg.window, a.scfg.jitter
        );
        exit(1)
    }

    let (prog, mem, name) = load_target(&a.target);
    let cfg = SimConfig::paper_baseline()
        .with_mode(a.mode)
        .with_regs(a.regs)
        .with_max_insts(a.insts);

    if a.full {
        // Reference mode for speedup measurements: the identical
        // budget, every instruction through the detailed pipeline.
        let mut p = cfir::sim::Pipeline::new(&prog, mem, cfg);
        let halted = matches!(p.run(), cfir::sim::RunExit::Halted);
        if a.emit_json {
            let doc = cfir::sim::run_json(&name, a.mode.label(), &p.stats);
            match &a.emit_json_path {
                Some(path) => {
                    std::fs::write(path, &doc).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!("[{path} written]");
                }
                None => println!("{doc}"),
            }
        } else {
            println!(
                "{name} ({}) — full detailed run{}",
                a.mode.label(),
                if halted { " (halted)" } else { "" }
            );
            println!(
                "  committed {}  cycles {}  ipc {:.4}  reuse {:.4}",
                p.stats.committed,
                p.stats.cycles,
                p.stats.ipc(),
                p.stats.reuse_fraction()
            );
        }
        return;
    }

    let s = run_sampled(&prog, &mem, &name, cfg, a.scfg);

    if a.emit_json {
        let doc = s.snapshot_json(a.mode.label());
        match &a.emit_json_path {
            Some(p) => {
                std::fs::write(p, &doc).unwrap_or_else(|e| {
                    eprintln!("cannot write {p}: {e}");
                    exit(1)
                });
                eprintln!("[{p} written]");
            }
            None => println!("{doc}"),
        }
        return;
    }

    println!(
        "{name} ({}) — sampled: period {} / warmup {} / window {}",
        a.mode.label(),
        s.period,
        s.warmup,
        s.window
    );
    println!(
        "budget {} insts: {} fast-forwarded, {} detailed ({} measured), {} windows{}",
        a.insts,
        s.ff_insts,
        s.detailed_insts,
        s.measured_insts,
        s.windows.len(),
        if s.halted { ", halted" } else { "" }
    );
    println!("  window  start_inst        checkpoint  committed  cycles    ipc   reuse  ci_expl");
    for (k, w) in s.windows.iter().enumerate() {
        println!(
            "  {k:6}  {:10}  {:016x}  {:9}  {:6}  {:5.3}  {:6.4}  {:7.4}",
            w.start_inst,
            w.checkpoint_id,
            w.committed,
            w.cycles,
            w.ipc,
            w.reuse_rate,
            w.ci_exploited
        );
    }
    let pm = |e: &cfir_sample::Estimate| format!("{:.4} ± {:.4} (n={})", e.mean, e.half_width, e.n);
    println!("  IPC          {}", pm(&s.ipc));
    println!("  reuse rate   {}", pm(&s.reuse_rate));
    println!("  CI exploited {}", pm(&s.ci_exploited));
}

fn replay_main<I: Iterator<Item = String>>(mut raw: std::iter::Peekable<I>) {
    let ckpt_path = raw.next().unwrap_or_else(|| usage());
    let mut a = Args {
        target: String::new(),
        mode: Mode::Ci,
        insts: 0,
        regs: RegFileSize::Finite(512),
        scfg: SamplingConfig::default(),
        full: false,
        emit_json: false,
        emit_json_path: None,
    };
    while let Some(arg) = raw.next() {
        if parse_common(&mut a, &arg, &mut raw) {
            continue;
        }
        match arg.as_str() {
            _ if a.target.is_empty() && !arg.starts_with('-') => a.target = arg,
            _ => usage(),
        }
    }
    if a.target.is_empty() {
        usage()
    }

    let ckpt = Checkpoint::load(std::path::Path::new(&ckpt_path)).unwrap_or_else(|e| {
        eprintln!("cannot load checkpoint: {e}");
        exit(1)
    });
    let (prog, _mem, name) = load_target(&a.target);
    let cfg = SimConfig::paper_baseline()
        .with_mode(a.mode)
        .with_regs(a.regs);
    let rep = replay_window(&prog, &ckpt, &cfg, a.scfg.warmup, a.scfg.window);
    println!(
        "{name} ({}) — replayed checkpoint {:016x} @ inst {}",
        a.mode.label(),
        ckpt.content_id(),
        ckpt.retired
    );
    println!(
        "  warmup committed {}  measured committed {}  cycles {}{}",
        rep.warmup_committed,
        rep.row.committed,
        rep.row.cycles,
        if rep.halted { "  (halted)" } else { "" }
    );
    println!(
        "  ipc {:.4}  reuse {:.4}  ci_exploited {:.4}",
        rep.row.ipc, rep.row.reuse_rate, rep.row.ci_exploited
    );
}
