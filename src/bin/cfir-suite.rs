//! `cfir-suite` — parallel, resumable orchestration of the whole
//! evaluation.
//!
//! Every figure/table/ablation is declared as data in
//! `cfir_bench::experiments`; this binary schedules any subset of that
//! matrix on the `cfir-harness` work-stealing pool, with per-job panic
//! isolation, bounded retries, a wall-clock watchdog, and a
//! content-addressed result cache so `--resume` skips every point that
//! already ran. Aggregation reduces results in job-definition order,
//! so the artifacts under `results/` are byte-identical for `--jobs 1`
//! and `--jobs 16` — and identical to what the retired serial binaries
//! produced.
//!
//! ```sh
//! cfir-suite --all --jobs $(nproc)        # regenerate everything
//! cfir-suite --all --resume               # again, from cache (0 jobs)
//! cfir-suite fig09 fig10 --emit-json      # a subset, with JSON bundles
//! cfir-suite --profile smoke --jobs 2     # the CI fast path
//! cfir-suite --list                       # what exists
//! ```

use cfir_bench::experiments::{by_name, profile, Params, EXPERIMENT_NAMES};
use cfir_harness::{run_suite, Experiment, SuiteOptions};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: cfir-suite [experiments..] [flags]\n\
         \x20 <name>..          experiments to run (see --list)\n\
         \x20 --all             every experiment, canonical order\n\
         \x20 --profile NAME    smoke | figures | ablations | extras | all\n\
         \x20 --jobs N          worker threads (default: available parallelism)\n\
         \x20 --resume          reuse cached results for unchanged points\n\
         \x20 --retries N       extra attempts per failing job (default 0)\n\
         \x20 --timeout SECS    per-job wall-clock budget (default 600, 0 = none)\n\
         \x20 --cache-dir PATH  result cache (default target/cfir-suite-cache)\n\
         \x20 --out-dir PATH    artifact directory (default results/)\n\
         \x20 --emit-json       also write JSON snapshot bundles\n\
         \x20 --bench-json [P]  write a wall-clock benchmark summary JSON\n\
         \x20                   (default path BENCH_6.json)\n\
         \x20 --insts N         committed-instruction budget (= CFIR_INSTS)\n\
         \x20 --quiet           suppress per-experiment tables\n\
         \x20 --list            list experiments and profiles, run nothing\n\
         env: CFIR_INSTS, CFIR_ELEMS, CFIR_SEED\n\
         exit: 0 all ok; 1 any job/aggregation failed; 2 usage error"
    );
    std::process::exit(2)
}

fn list() -> ! {
    let p = Params::from_env();
    println!("experiments:");
    for name in EXPERIMENT_NAMES {
        let e = by_name(&p, name).expect("registered");
        println!("  {:<14} {:>4} jobs  {}", e.name, e.jobs.len(), e.title);
    }
    println!("profiles:");
    for prof in ["smoke", "figures", "ablations", "extras", "all"] {
        println!("  {:<14} {}", prof, profile(prof).unwrap().join(" "));
    }
    std::process::exit(0)
}

/// The `results/INDEX.md` preamble; the experiment list below it is
/// generated from the matrix itself.
const INDEX_HEADER: &str = "# results/\n\n\
    Outputs of the evaluation suite (see EXPERIMENTS.md for the\n\
    paper-vs-measured discussion). Regenerate everything with\n\
    `cfir-suite --all --jobs $(nproc)`; any single experiment with\n\
    `cfir-suite <name>` or its thin wrapper binary.\n\n\
    - `final_run.txt` — **the canonical record**: one full sequential run of\n\
    \x20 table1 + fig04..fig14 + exp_regs + exp_coherence + ablations +\n\
    \x20 exp_limit + exp_warmup with the final code and defaults\n\
    \x20 (CFIR_INSTS=150000).\n\
    - `all_figures.txt`, `updates.txt` — earlier intermediate runs kept for\n\
    \x20 provenance (pre- event-attribution fix and pre- blacklist-knob).\n\
    - `*.csv` — machine-readable tables (latest run wins).\n\
    - `baselines/` — the pinned CI perf-gate reference (CFIR_INSTS=20000);\n\
    \x20 refresh with `scripts/refresh-baselines.sh`.\n\n\
    Experiments and the artifacts they own:\n\n";

fn write_index(experiments: &[Experiment], out_dir: &std::path::Path) {
    let mut doc = String::from(INDEX_HEADER);
    for e in experiments {
        use std::fmt::Write as _;
        let _ = writeln!(doc, "- `{}` ({} jobs) — {}", e.name, e.jobs.len(), e.title);
    }
    let _ = std::fs::create_dir_all(out_dir);
    let path = out_dir.join("INDEX.md");
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("cfir-suite: could not write {}: {e}", path.display());
    }
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut do_list = false;
    let mut bench_json: Option<String> = None;
    let mut opts = SuiteOptions::default();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("cfir-suite: {a} wants a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--help" | "-h" => usage(),
            "--list" => do_list = true,
            "--all" => all = true,
            "--profile" => {
                let v = value();
                match profile(&v) {
                    Some(p) => names.extend(p.iter().map(|s| s.to_string())),
                    None => {
                        eprintln!("cfir-suite: unknown profile `{v}`");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                opts.jobs = value().parse().unwrap_or_else(|_| {
                    eprintln!("cfir-suite: --jobs wants a number");
                    std::process::exit(2);
                })
            }
            "--retries" => {
                opts.retries = value().parse().unwrap_or_else(|_| {
                    eprintln!("cfir-suite: --retries wants a number");
                    std::process::exit(2);
                })
            }
            "--timeout" => {
                let secs: u64 = value().parse().unwrap_or_else(|_| {
                    eprintln!("cfir-suite: --timeout wants seconds");
                    std::process::exit(2);
                });
                opts.timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value())),
            "--out-dir" => opts.out_dir = PathBuf::from(value()),
            "--emit-json" => opts.emit_json = true,
            "--bench-json" => {
                // An optional output path follows iff it looks like one
                // (so experiment names are never swallowed).
                bench_json = Some(match args.peek() {
                    Some(n) if n.ends_with(".json") => args.next().unwrap(),
                    _ => "BENCH_6.json".to_string(),
                });
            }
            "--resume" => opts.resume = true,
            "--quiet" => opts.quiet = true,
            "--insts" => std::env::set_var("CFIR_INSTS", value()),
            other if other.starts_with('-') => {
                eprintln!("cfir-suite: unknown flag {other}");
                usage()
            }
            name => names.push(name.to_string()),
        }
    }
    if do_list {
        list();
    }
    if all {
        names = EXPERIMENT_NAMES.iter().map(|s| s.to_string()).collect();
    } else {
        // Keep first occurrence of each requested name.
        let mut seen = std::collections::HashSet::new();
        names.retain(|n| seen.insert(n.clone()));
    }
    if names.is_empty() {
        eprintln!("cfir-suite: nothing to run (name experiments, --profile, or --all)");
        usage();
    }

    let p = Params::from_env();
    let experiments: Vec<Experiment> = names
        .iter()
        .map(|n| {
            by_name(&p, n).unwrap_or_else(|| {
                eprintln!("cfir-suite: unknown experiment `{n}` (see --list)");
                std::process::exit(2);
            })
        })
        .collect();

    if all {
        write_index(&experiments, &opts.out_dir);
    }
    let report = run_suite(experiments, &opts);
    for e in &report.experiments {
        if let Some(err) = &e.error {
            eprintln!("cfir-suite: {}: {err}", e.name);
        }
    }
    println!("{}", report.summary_line());
    if let Some(path) = &bench_json {
        // Key order and the original three keys are stable; newer
        // fields only ever append (downstream tooling greps these).
        use std::fmt::Write as _;
        let mut doc = format!(
            "{{\"suite_wall_s\": {:.3}, \"jobs\": {}, \"cache_hits\": {}, \"peak_workers\": {}, \"experiments\": [",
            report.wall.as_secs_f64(),
            report.executed,
            report.cached,
            report.peak_workers
        );
        for (i, e) in report.experiments.iter().enumerate() {
            let _ = write!(
                doc,
                "{}{{\"name\": \"{}\", \"wall_s\": {:.3}, \"executed\": {}, \"cached\": {}, \"ok\": {}, \"jobs\": {}, \"deduped\": {}}}",
                if i > 0 { ", " } else { "" },
                e.name,
                e.wall.as_secs_f64(),
                e.executed,
                e.cached,
                e.ok(),
                e.jobs,
                e.deduped
            );
        }
        // Detailed-core throughput of the points simulated this run
        // (cache hits excluded); `insts_per_sec` is what the CI perf
        // gate compares against the committed floor.
        let committed: u64 = report.perf.iter().map(|p| p.committed).sum();
        let wall_s: f64 = report.perf.iter().map(|p| p.wall.as_secs_f64()).sum();
        let _ = write!(
            doc,
            "], \"perf\": {{\"committed_insts\": {committed}, \"detailed_wall_s\": {wall_s:.3}, \"insts_per_sec\": {:.1}, \"kernels\": [",
            if wall_s > 0.0 { committed as f64 / wall_s } else { 0.0 }
        );
        for (i, p) in report.perf.iter().enumerate() {
            let _ = write!(
                doc,
                "{}{{\"name\": \"{}\", \"mode\": \"{}\", \"committed\": {}, \"wall_s\": {:.3}, \"insts_per_sec\": {:.1}}}",
                if i > 0 { ", " } else { "" },
                p.name,
                p.mode,
                p.committed,
                p.wall.as_secs_f64(),
                p.insts_per_sec()
            );
        }
        doc.push_str("]}}\n");
        match std::fs::write(path, doc) {
            Ok(()) => println!("[bench summary written to {path}]"),
            Err(e) => {
                eprintln!("cfir-suite: could not write {path}: {e}");
                std::process::exit(1)
            }
        }
    }
    std::process::exit(if report.all_ok() { 0 } else { 1 })
}
