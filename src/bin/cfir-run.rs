//! `cfir-run` — assemble a program and run it on the emulator or the
//! out-of-order core, from the command line.
//!
//! ```sh
//! cargo run --release --bin cfir-run -- prog.asm --mode ci --insts 100000
//! cargo run --release --bin cfir-run -- prog.asm --emu --trace 20
//! ```
//!
//! Options:
//!
//! * `--mode scal|wb|ci-iw|ci|vect` — machine variant (default `ci`);
//! * `--emu` — run the functional emulator instead of the OOO core;
//! * `--insts N` — committed-instruction budget (default: run to halt);
//! * `--regs N|inf` — physical register file size (default 512);
//! * `--ports N` — L1D ports (default 1);
//! * `--replicas N` — replicas per vectorized instruction (default 4);
//! * `--trace N` — print the last N committed instructions;
//! * `--pipeview N` — print per-cycle pipeline occupancy for the first
//!   N cycles;
//! * `--pipeview <path>` — record every dynamic instruction's pipeline
//!   lifecycle (stages, wait-edges, replica/reuse/wrong-path fate) and
//!   write a Konata-compatible trace to `path` at the end of the run
//!   (render it with `cfir-report timeline <path>`);
//! * `--pipeview-cap N` — retain at most N retired lifecycle records
//!   (ring buffer; default 1M, 0 = unbounded);
//! * `--emit-json [path.json]` — emit the versioned run-statistics
//!   snapshot as a JSON document (with interval time series) instead of
//!   the human-readable summary; when the next argument ends in
//!   `.json` the document is written there instead of stdout;
//! * `--data ADDR=VALUE,...` — pre-initialise data memory words;
//! * `--dump ADDR..ADDR` — print a memory range after the run.

use cfir::prelude::*;
use std::process::exit;

struct Args {
    path: String,
    mode: Mode,
    emu: bool,
    insts: u64,
    regs: RegFileSize,
    ports: u32,
    replicas: u8,
    trace: usize,
    pipeview: u64,
    pipeview_path: Option<String>,
    pipeview_cap: usize,
    emit_json: bool,
    emit_json_path: Option<String>,
    data: Vec<(u64, u64)>,
    dump: Option<(u64, u64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cfir-run <prog.asm> [--mode scal|wb|ci-iw|ci|vect] [--emu] [--insts N]\n\
         \x20             [--regs N|inf] [--ports N] [--replicas N] [--trace N]\n\
         \x20             [--pipeview N|path] [--pipeview-cap N]\n\
         \x20             [--emit-json [path.json]] [--data ADDR=VAL,...] [--dump LO..HI]\n\
         --emit-json emits the versioned statistics snapshot (JSON) instead of the\n\
         text summary; give a path ending in .json to write it to a file\n\
         (e.g. results/run.json) rather than stdout\n\
         --pipeview takes either a cycle count (print occupancy for the first N\n\
         cycles) or a file path (record per-instruction lifecycles and write a\n\
         Konata trace there; view with `cfir-report timeline <path>`)"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut a = Args {
        path: String::new(),
        mode: Mode::Ci,
        emu: false,
        insts: u64::MAX >> 1,
        regs: RegFileSize::Finite(512),
        ports: 1,
        replicas: 4,
        trace: 0,
        pipeview: 0,
        pipeview_path: None,
        pipeview_cap: cfir::obs::lifecycle::DEFAULT_PIPEVIEW_CAP,
        emit_json: false,
        emit_json_path: None,
        data: Vec::new(),
        dump: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => {
                a.mode = it
                    .next()
                    .as_deref()
                    .and_then(Mode::from_label)
                    .unwrap_or_else(|| usage())
            }
            "--emu" => a.emu = true,
            "--insts" => {
                a.insts = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--regs" => {
                a.regs = match it.next().as_deref() {
                    Some("inf") => RegFileSize::Infinite,
                    Some(n) => RegFileSize::Finite(n.parse().unwrap_or_else(|_| usage())),
                    None => usage(),
                }
            }
            "--ports" => {
                a.ports = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--replicas" => {
                a.replicas = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trace" => {
                a.trace = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--pipeview" => {
                // A number keeps the legacy occupancy view; anything
                // else is a Konata trace output path.
                let v = it.next().unwrap_or_else(|| usage());
                match v.parse() {
                    Ok(n) => a.pipeview = n,
                    Err(_) => a.pipeview_path = Some(v),
                }
            }
            "--pipeview-cap" => {
                a.pipeview_cap = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--emit-json" => {
                a.emit_json = true;
                // An optional output path follows iff it looks like one
                // (so the positional program file is never swallowed).
                if it.peek().is_some_and(|n| n.ends_with(".json")) {
                    a.emit_json_path = it.next();
                }
            }
            "--data" => {
                for kv in it.next().unwrap_or_else(|| usage()).split(',') {
                    let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                    a.data.push((
                        parse_num(k).unwrap_or_else(|| usage()),
                        parse_num(v).unwrap_or_else(|| usage()),
                    ));
                }
            }
            "--dump" => {
                let r = it.next().unwrap_or_else(|| usage());
                let (lo, hi) = r.split_once("..").unwrap_or_else(|| usage());
                a.dump = Some((
                    parse_num(lo).unwrap_or_else(|| usage()),
                    parse_num(hi).unwrap_or_else(|| usage()),
                ));
            }
            _ if a.path.is_empty() && !arg.starts_with('-') => a.path = arg,
            _ => usage(),
        }
    }
    if a.path.is_empty() {
        usage()
    }
    a
}

fn parse_num(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x") {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let a = parse_args();
    let src = std::fs::read_to_string(&a.path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", a.path);
        exit(1)
    });
    let prog = match cfir::isa::assemble(&a.path, &src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            exit(1)
        }
    };
    let mut mem = MemImage::new();
    for (addr, val) in &a.data {
        mem.write(*addr, *val);
    }

    if a.emu {
        let mut emu = Emulator::new(mem);
        let stop = emu.run(&prog, a.insts);
        println!("emulator: {stop:?} after {} instructions", emu.retired);
        print_regs(|r| emu.reg(r));
        if let Some((lo, hi)) = a.dump {
            dump(&emu.mem, lo, hi);
        }
        return;
    }

    let mut cfg = SimConfig::paper_baseline()
        .with_mode(a.mode)
        .with_regs(a.regs)
        .with_dports(a.ports)
        .with_replicas(a.replicas)
        .with_max_insts(a.insts);
    if a.emit_json {
        // Snapshots carry the interval time series.
        cfg.interval_cycles = 10_000;
    }
    let mut pipe = Pipeline::new(&prog, mem, cfg);
    if a.trace > 0 {
        pipe.enable_commit_log(a.trace);
    }
    if let Some(p) = &a.pipeview_path {
        pipe.enable_pipeview(p, a.pipeview_cap);
    }
    if a.pipeview > 0 {
        println!("cycle  fetch-pc  decq  rob(done)  lsq  regs  replicas  srsmt  committed");
        for _ in 0..a.pipeview {
            pipe.step();
            let s = pipe.snapshot();
            println!(
                "{:5}  {:8}  {:4}  {:4}({:3})  {:3}  {:4}  {:8}  {:5}  {:9}",
                s.cycle,
                s.fetch_pc,
                s.decode_q,
                s.rob,
                s.rob_done,
                s.lsq,
                s.regs_in_use,
                s.replicas_in_flight,
                s.srsmt_entries,
                s.committed
            );
        }
        println!();
    }
    let exit_reason = pipe.run();
    let s = &pipe.stats;
    if let Some(p) = &a.pipeview_path {
        eprintln!(
            "[pipeview trace written to {p}: {} records, {} dropped]",
            s.lifecycle_records, s.lifecycle_dropped
        );
    }
    if a.emit_json {
        let doc = run_json(&a.path, a.mode.label(), s);
        match &a.emit_json_path {
            Some(p) => {
                if let Some(dir) = std::path::Path::new(p).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(p, doc) {
                    eprintln!("cannot write {p}: {e}");
                    exit(1)
                }
                println!("[json written to {p}]");
            }
            None => println!("{doc}"),
        }
    } else {
        println!(
            "{}: {exit_reason:?}  committed={} cycles={} IPC={:.3} mispredict={:.1}% reuse={:.1}%",
            a.mode.label(),
            s.committed,
            s.cycles,
            s.ipc(),
            s.mispredict_rate() * 100.0,
            s.reuse_fraction() * 100.0,
        );
        print_regs(|r| pipe.arch_reg(r));
    }
    if a.trace > 0 {
        println!("\nlast {} commits:", a.trace);
        for c in pipe.commit_log() {
            println!(
                "  [{:>8}] seq {:>8} pc {:>5} {:28} = {:#x}{}",
                c.cycle,
                c.seq,
                c.pc,
                c.inst.to_string(),
                c.value,
                if c.reused { "  (reused)" } else { "" }
            );
        }
    }
    if let Some((lo, hi)) = a.dump {
        dump(pipe.memory(), lo, hi);
    }
}

fn print_regs(read: impl Fn(u8) -> u64) {
    println!("non-zero registers:");
    for r in 1..64u8 {
        let v = read(r);
        if v != 0 {
            println!("  r{r:<2} = {v:#x} ({v})");
        }
    }
}

fn dump(mem: &MemImage, lo: u64, hi: u64) {
    println!("memory [{lo:#x}..{hi:#x}):");
    let mut a = lo & !7;
    while a < hi {
        println!("  {a:#08x}: {:#018x}", mem.read(a));
        a += 8;
    }
}
