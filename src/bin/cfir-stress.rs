//! `cfir-stress` — randomized co-simulation soak test.
//!
//! Generates random (terminating) programs and random data, runs each
//! through the golden emulator and the out-of-order core in every
//! machine mode with the commit-time oracle armed, and compares final
//! architectural state. Any divergence aborts with the failing seed so
//! the case can be replayed:
//!
//! ```sh
//! cargo run --release --bin cfir-stress -- 500          # 500 cases
//! cargo run --release --bin cfir-stress -- 1 12345      # replay seed
//! ```

use cfir::prelude::*;
use cfir_isa::{AluOp, Cond};

const DATA_BASE: i64 = 0x2_0000;
const OUT_BASE: i64 = 0x8_0000;
const DATA_MASK: i64 = 0x3FF;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random terminating loop, same shape family as the proptest
/// generator but with a larger op vocabulary (it can afford longer
/// runs).
fn random_program(rng: &mut Rng) -> Program {
    let mut b = ProgramBuilder::new("stress");
    let iters = 32 + rng.below(400) as i64;
    b.li(1, 0);
    b.li(2, iters);
    b.li(3, DATA_MASK);
    b.li(4, DATA_BASE);
    b.li(5, OUT_BASE);
    b.li(6, 0);
    let top = b.label_here();
    b.alu(AluOp::And, 7, 6, 3);
    b.alu(AluOp::Add, 7, 7, 4);
    let body = 2 + rng.below(14);
    for _ in 0..body {
        let r = |rng: &mut Rng| 10 + rng.below(16) as u8;
        match rng.below(10) {
            0 => {
                let d = r(rng);
                b.ld(d, 7, (rng.below(4) * 8) as i64);
            }
            1 => {
                // Indexed load.
                let d = r(rng);
                let i = r(rng);
                b.alui(AluOp::Mul, 8, i, 8);
                b.alu(AluOp::And, 8, 8, 3);
                b.alu(AluOp::Add, 8, 8, 4);
                b.ld(d, 8, 0);
            }
            2 => {
                // Store to the out region.
                let s = r(rng);
                b.alui(AluOp::Mul, 8, 1, 8);
                b.alui(AluOp::And, 8, 8, 0xFFF);
                b.alu(AluOp::Add, 8, 8, 5);
                b.st(s, 8, 0);
            }
            3 => {
                // Hammock.
                let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];
                let c = conds[rng.below(4) as usize];
                let (x, y) = (r(rng), r(rng));
                let else_ = b.label();
                let join = b.label();
                b.br(c, x, y, else_);
                b.alui(AluOp::Add, 9, 9, 1);
                b.jmp(join);
                b.bind(else_);
                b.alui(AluOp::Xor, 9, 9, 3);
                b.bind(join);
            }
            4 => {
                // Self-accumulator (exercises the self-loop chains).
                let d = r(rng);
                let s = r(rng);
                b.alu(AluOp::Add, d, d, s);
            }
            5 => {
                let d = r(rng);
                let s = r(rng);
                b.alui(AluOp::Mul, d, s, (rng.below(64) as i64) - 32);
            }
            6 => {
                let d = r(rng);
                let s = r(rng);
                b.alui(AluOp::Div, d, s, 1 + rng.below(9) as i64);
            }
            _ => {
                let ops = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Xor,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Srl,
                ];
                let o = ops[rng.below(6) as usize];
                let (d, s1, s2) = (r(rng), r(rng), r(rng));
                b.alu(o, d, s1, s2);
            }
        }
    }
    b.alui(AluOp::Add, 6, 6, 8);
    b.alui(AluOp::Add, 1, 1, 1);
    b.br(Cond::Lt, 1, 2, top);
    b.halt();
    b.finish()
}

fn main() {
    let cases: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let base_seed: u64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FF_EE00);
    let modes = [
        Mode::Scalar,
        Mode::WideBus,
        Mode::CiIw,
        Mode::Ci,
        Mode::Vect,
    ];
    let mut total_reuse = 0u64;
    for case in 0..cases {
        let seed = base_seed.wrapping_add(case.wrapping_mul(0x9E37_79B9));
        let mut rng = Rng(seed | 1);
        let prog = random_program(&mut rng);
        let mut mem = MemImage::new();
        for i in 0..128u64 {
            mem.write(DATA_BASE as u64 + i * 8, rng.next() & 0xFF);
        }
        let mut emu = Emulator::new(mem.clone());
        emu.run(&prog, 50_000_000);
        assert!(emu.halted, "seed {seed}: generated program must halt");
        for mode in modes {
            let mut cfg = SimConfig::paper_baseline()
                .with_mode(mode)
                .with_regs(RegFileSize::Finite(256))
                .with_max_insts(u64::MAX >> 1);
            cfg.cosim_check = true;
            let mut pipe = Pipeline::new(&prog, mem.clone(), cfg);
            let exit = pipe.run();
            assert_eq!(exit, RunExit::Halted, "seed {seed} mode {mode:?}");
            for r in 0..64u8 {
                assert_eq!(
                    pipe.arch_reg(r),
                    emu.reg(r),
                    "seed {seed} mode {mode:?}: r{r} diverged"
                );
            }
            total_reuse += pipe.stats.committed_reuse;
        }
        if (case + 1) % 50 == 0 {
            println!("{}/{} cases clean", case + 1, cases);
        }
    }
    println!(
        "all {cases} cases clean across {} modes ({total_reuse} values reused)",
        modes.len()
    );
}
