//! `cfir-report` — inspect, diff and gate the simulator's JSON
//! snapshots (see `DESIGN.md` for the schema).
//!
//! ```sh
//! # Pretty-print a snapshot (single run or bundle):
//! cfir-report results/smoke.json
//!
//! # Per-metric deltas between two snapshots; exit 1 when a gating
//! # metric (IPC, reuse fraction, CI-exploited fraction) regresses:
//! cfir-report diff results/baselines/smoke.json results/smoke.json
//!
//! # Same, phrased as a regression gate (CI uses this):
//! cfir-report check results/baselines/smoke.json results/smoke.json --tolerance 2%
//! ```
//!
//! `--tolerance` accepts `2%` or `0.02` (default `2%`); it is the
//! relative move a gating metric may make in the bad direction before
//! the check fails. Exit codes: 0 ok, 1 regression, 2 usage/IO error.

use cfir::report;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: cfir-report <snapshot.json>\n\
         \x20      cfir-report diff  <old.json> <new.json> [--tolerance P%]\n\
         \x20      cfir-report check <baseline.json> <run.json> [--tolerance P%]"
    );
    exit(2)
}

fn load(path: &str) -> cfir::obs::json::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cfir-report: cannot read {path}: {e}");
        exit(2)
    });
    report::parse_doc(&text).unwrap_or_else(|e| {
        eprintln!("cfir-report: {path}: {e}");
        exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut sub: Option<&str> = None;
    let mut tolerance = 0.02;
    let mut it = args.iter().map(|s| s.as_str()).peekable();
    while let Some(a) = it.next() {
        match a {
            "diff" | "check" | "--check" if sub.is_none() && files.is_empty() => {
                sub = Some(a.trim_start_matches("--"));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(report::parse_tolerance)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ if !a.starts_with('-') => files.push(a),
            _ => usage(),
        }
    }

    match (sub, files.as_slice()) {
        (None, [path]) => {
            print!("{}", report::render(&load(path)));
        }
        (Some(_), [old, new]) => {
            let outcome = report::diff(&load(old), &load(new), tolerance).unwrap_or_else(|e| {
                eprintln!("cfir-report: {e}");
                exit(2)
            });
            print!("{}", outcome.report);
            if outcome.regressed {
                eprintln!(
                    "cfir-report: regression beyond {:.2}% tolerance",
                    tolerance * 100.0
                );
                exit(1)
            }
            println!("ok (tolerance {:.2}%)", tolerance * 100.0);
        }
        _ => usage(),
    }
}
