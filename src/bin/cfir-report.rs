//! `cfir-report` — inspect, diff and gate the simulator's JSON
//! snapshots (see `DESIGN.md` for the schema).
//!
//! ```sh
//! # Pretty-print a snapshot (single run or bundle):
//! cfir-report results/smoke.json
//!
//! # Per-metric deltas between two snapshots; exit 1 when a gating
//! # metric (IPC, reuse fraction, CI-exploited fraction) regresses:
//! cfir-report diff results/baselines/smoke.json results/smoke.json
//!
//! # Same, phrased as a regression gate (CI uses this):
//! cfir-report check results/baselines/smoke.json results/smoke.json --tolerance 2%
//!
//! # Render a Konata pipeview trace (from `cfir-run --pipeview t.kanata`)
//! # as an ASCII timeline, zoomed on the first misprediction flush:
//! cfir-report timeline t.kanata --around-mispredict 1
//! ```
//!
//! `--tolerance` accepts `2%` or `0.02` (default `2%`); it is the
//! relative move a gating metric may make in the bad direction before
//! the check fails. Exit codes: 0 ok, 1 regression, 2 usage/IO error.
//!
//! `timeline` filters: `--pc N` (only that static instruction),
//! `--cycle-range LO..HI`, `--around-mispredict N` (window on the Nth
//! squash cluster, 1-based), `--width N` (columns, default 96).

use cfir::obs::{parse_konata, render_timeline, TimelineOpts};
use cfir::report;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: cfir-report <snapshot.json>\n\
         \x20      cfir-report diff  <old.json> <new.json> [--tolerance P%]\n\
         \x20      cfir-report check <baseline.json> <run.json> [--tolerance P%]\n\
         \x20      cfir-report bottleneck <run.json> [<baseline.json>]\n\
         \x20      cfir-report cidi <run.json>\n\
         \x20      cfir-report sampling <sampled.json> [<full.json>]\n\
         \x20      cfir-report timeline <trace.kanata> [--pc N] [--cycle-range LO..HI]\n\
         \x20                  [--around-mispredict N] [--width N]"
    );
    exit(2)
}

fn parse_num(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x") {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn timeline(args: &[&str]) -> ! {
    let mut path: Option<&str> = None;
    let mut opts = TimelineOpts::default();
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        match a {
            "--pc" => opts.pc = Some(it.next().and_then(parse_num).unwrap_or_else(|| usage())),
            "--cycle-range" => {
                let r = it.next().unwrap_or_else(|| usage());
                let (lo, hi) = r.split_once("..").unwrap_or_else(|| usage());
                opts.cycle_range = Some((
                    parse_num(lo).unwrap_or_else(|| usage()),
                    parse_num(hi).unwrap_or_else(|| usage()),
                ));
            }
            "--around-mispredict" => {
                opts.around_mispredict =
                    Some(it.next().and_then(parse_num).unwrap_or_else(|| usage()) as usize)
            }
            "--width" => {
                opts.max_cols = it
                    .next()
                    .and_then(parse_num)
                    .filter(|&n| n >= 24)
                    .unwrap_or_else(|| usage()) as usize
            }
            _ if !a.starts_with('-') && path.is_none() => path = Some(a),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cfir-report: cannot read {path}: {e}");
        exit(2)
    });
    let trace = parse_konata(&text).unwrap_or_else(|e| {
        eprintln!("cfir-report: {path}: {e}");
        exit(2)
    });
    match render_timeline(&trace, &opts) {
        Ok(out) => {
            print!("{out}");
            exit(0)
        }
        Err(e) => {
            eprintln!("cfir-report: {e}");
            exit(2)
        }
    }
}

fn load(path: &str) -> cfir::obs::json::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cfir-report: cannot read {path}: {e}");
        exit(2)
    });
    report::parse_doc(&text).unwrap_or_else(|e| {
        eprintln!("cfir-report: {path}: {e}");
        exit(2)
    })
}

/// Warn (loudly) when any run of the document recorded dropped
/// lifecycle records; returns the count so `check` can gate on it.
fn warn_dropped(path: &str, doc: &cfir::obs::json::JsonValue) -> u64 {
    let dropped = report::lifecycle_dropped(doc);
    if dropped > 0 {
        eprintln!(
            "cfir-report: WARNING: {path}: {dropped} lifecycle records were dropped — \
             the bottleneck DAG (critical path, what-if projections) is incomplete; \
             re-run with an unbounded ring (record_lifecycle) to trust these numbers"
        );
    }
    dropped
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(|s| s.as_str()) == Some("timeline") {
        let rest: Vec<&str> = args[1..].iter().map(|s| s.as_str()).collect();
        timeline(&rest);
    }
    let mut files: Vec<&str> = Vec::new();
    let mut sub: Option<&str> = None;
    let mut tolerance = 0.02;
    let mut it = args.iter().map(|s| s.as_str()).peekable();
    while let Some(a) = it.next() {
        match a {
            "diff" | "check" | "--check" | "bottleneck" | "cidi" | "sampling"
                if sub.is_none() && files.is_empty() =>
            {
                sub = Some(a.trim_start_matches("--"));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(report::parse_tolerance)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ if !a.starts_with('-') => files.push(a),
            _ => usage(),
        }
    }

    match (sub, files.as_slice()) {
        (None, [path]) => {
            let doc = load(path);
            warn_dropped(path, &doc);
            print!("{}", report::render(&doc));
        }
        (Some("cidi"), [path]) => {
            let doc = load(path);
            let out = report::render_cidi(&doc).unwrap_or_else(|e| {
                eprintln!("cfir-report: {e}");
                exit(2)
            });
            print!("{out}");
        }
        (Some("sampling"), [path]) | (Some("sampling"), [path, _]) => {
            let doc = load(path);
            let full_doc = match files.as_slice() {
                [_, full] => Some(load(full)),
                _ => None,
            };
            let out = report::render_sampling(&doc, full_doc.as_ref()).unwrap_or_else(|e| {
                eprintln!("cfir-report: {e}");
                exit(2)
            });
            print!("{out}");
        }
        (Some("bottleneck"), [new]) | (Some("bottleneck"), [new, _]) => {
            let new_doc = load(new);
            warn_dropped(new, &new_doc);
            let old_doc = match files.as_slice() {
                [_, old] => Some(load(old)),
                _ => None,
            };
            let out = report::render_bottleneck(&new_doc, old_doc.as_ref()).unwrap_or_else(|e| {
                eprintln!("cfir-report: {e}");
                exit(2)
            });
            print!("{out}");
        }
        (Some(sub), [old, new]) => {
            let (old_doc, new_doc) = (load(old), load(new));
            warn_dropped(old, &old_doc);
            let dropped = warn_dropped(new, &new_doc);
            let outcome = report::diff(&old_doc, &new_doc, tolerance).unwrap_or_else(|e| {
                eprintln!("cfir-report: {e}");
                exit(2)
            });
            print!("{}", outcome.report);
            if outcome.regressed {
                eprintln!(
                    "cfir-report: regression beyond {:.2}% tolerance",
                    tolerance * 100.0
                );
                exit(1)
            }
            if sub == "check" && dropped > 0 {
                eprintln!("cfir-report: failing --check: the run dropped lifecycle records");
                exit(1)
            }
            println!("ok (tolerance {:.2}%)", tolerance * 100.0);
        }
        _ => usage(),
    }
}
