//! `cfir-analyze` — static CFG / post-dominator analysis of the
//! shipped kernels, with an agreement cross-check against the dynamic
//! reconvergence heuristic (`cfir_core::rcp::estimate`).
//!
//! ```sh
//! # Human-readable summary of every kernel:
//! cfir-analyze --all
//!
//! # JSON bundle (one report object per kernel, schema-versioned):
//! cfir-analyze --all --emit-json results/analyze.json
//!
//! # Analyze an assembly file instead of a named kernel:
//! cfir-analyze path/to/prog.asm
//!
//! # CI gate: fail on any lint, and on RCP-agreement regression
//! # against the committed baseline:
//! cfir-analyze --all --check --baseline results/baselines/analyze.json
//! ```
//!
//! `--check` exits 1 when any kernel trips a lint or (with
//! `--baseline`) when a kernel's hammock/all agreement fraction drops
//! more than `--tolerance` (default 0, the fractions are deterministic)
//! below the committed value. Exit codes: 0 ok, 1 gate failure,
//! 2 usage/IO error.

use cfir::obs::json::{self, JsonWriter};
use cfir::report::parse_tolerance;
use cfir_analyze::{analyze, Agreement, ANALYZE_SCHEMA_VERSION};
use cfir_isa::Program;
use cfir_workloads::{by_name, WorkloadSpec, NAMES};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: cfir-analyze [<kernel|file.asm>...] [--all] [--emit-json <path|->]\n\
         \x20      [--check] [--baseline <analyze.json>] [--tolerance P%]"
    );
    exit(2)
}

fn load_program(name: &str) -> Program {
    if name.ends_with(".asm") {
        let text = std::fs::read_to_string(name).unwrap_or_else(|e| {
            eprintln!("cfir-analyze: cannot read {name}: {e}");
            exit(2)
        });
        return cfir_isa::assemble(name, &text).unwrap_or_else(|e| {
            eprintln!("cfir-analyze: {name}: {e}");
            exit(2)
        });
    }
    match by_name(name, WorkloadSpec::default()) {
        Some(w) => w.prog,
        None => {
            eprintln!(
                "cfir-analyze: unknown kernel {name:?} (known: {})",
                NAMES.join(", ")
            );
            exit(2)
        }
    }
}

struct KernelResult {
    name: String,
    agreement: Agreement,
    mean_cidi_fraction: f64,
    n_lints: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut emit_json: Option<String> = None;
    let mut check = false;
    let mut baseline: Option<String> = None;
    let mut tolerance = 0.0;
    let mut it = args.iter().map(|s| s.as_str());
    while let Some(a) = it.next() {
        match a {
            "--all" => names.extend(NAMES.iter().map(|s| s.to_string())),
            "--emit-json" => emit_json = Some(it.next().unwrap_or_else(|| usage()).to_string()),
            "--check" => check = true,
            "--baseline" => baseline = Some(it.next().unwrap_or_else(|| usage()).to_string()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(parse_tolerance)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ if !a.starts_with('-') => names.push(a.to_string()),
            _ => usage(),
        }
    }
    if names.is_empty() {
        names.extend(NAMES.iter().map(|s| s.to_string()));
    }

    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_u64("schema_version", ANALYZE_SCHEMA_VERSION as u64);
    w.key("kernels").begin_arr();

    let mut results: Vec<KernelResult> = Vec::new();
    for name in &names {
        let prog = load_program(name);
        let a = analyze(&prog);
        let agreement = Agreement::compute(&prog, &a.branches);
        if emit_json.is_none() {
            println!(
                "{:10} {:4} insts {:3} blocks {:3} edges {:2} loops (depth {}) \
                 branches {:2}  rcp agree {}/{} hammock, {}/{} all  lints {}",
                prog.name,
                prog.len(),
                a.cfg.len(),
                a.cfg.n_edges,
                a.loops.loops.len(),
                a.loops.max_depth(),
                a.branches.len(),
                agreement.hammock_agree,
                agreement.hammock_checked,
                agreement.all_agree,
                agreement.all_checked,
                a.lints.len(),
            );
            for l in &a.lints {
                println!("    lint: {l}");
            }
            for d in &agreement.divergences {
                println!(
                    "    divergence at pc {}: static {:?} vs estimate {:?} ({})",
                    d.pc, d.static_rcp, d.estimate, d.class
                );
            }
        }
        cfir_analyze::write_report(&prog, &a, &mut w);
        results.push(KernelResult {
            name: prog.name.clone(),
            agreement,
            mean_cidi_fraction: a.cidi.mean_cidi_fraction(),
            n_lints: a.lints.len(),
        });
    }
    w.end_arr();
    w.end_obj();
    let doc = w.finish();

    match emit_json.as_deref() {
        Some("-") => println!("{doc}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("cfir-analyze: cannot write {path}: {e}");
                exit(2)
            }
            eprintln!("cfir-analyze: wrote {path}");
        }
        None => {}
    }

    if !check {
        return;
    }
    let mut failed = false;
    for r in &results {
        if r.n_lints > 0 {
            eprintln!("cfir-analyze: {}: {} lint(s)", r.name, r.n_lints);
            failed = true;
        }
    }
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cfir-analyze: cannot read baseline {path}: {e}");
            exit(2)
        });
        let base = json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cfir-analyze: baseline {path}: {e}");
            exit(2)
        });
        let kernels = base
            .get("kernels")
            .and_then(|k| k.as_arr())
            .unwrap_or_else(|| {
                eprintln!("cfir-analyze: baseline {path}: missing kernels array");
                exit(2)
            });
        for r in &results {
            let Some(bk) = kernels
                .iter()
                .find(|k| k.get("name").and_then(|n| n.as_str()) == Some(r.name.as_str()))
            else {
                eprintln!("cfir-analyze: {}: not in baseline (skipping)", r.name);
                continue;
            };
            let checks = [
                ("hammock_fraction", r.agreement.hammock_fraction()),
                ("all_fraction", r.agreement.all_fraction()),
            ];
            for (key, fresh) in checks {
                let Some(base_v) = bk.get("agreement").and_then(|a| a.get(key)?.as_f64()) else {
                    continue;
                };
                if fresh < base_v - tolerance {
                    eprintln!(
                        "cfir-analyze: {}: {key} regressed {base_v:.4} -> {fresh:.4} \
                         (tolerance {tolerance:.4})",
                        r.name
                    );
                    failed = true;
                }
            }
            // Dataflow gate: a kernel's mean CIDI fraction dropping
            // below the committed value means the classifier started
            // demoting instructions it used to prove reusable.
            if let Some(base_v) = bk
                .get("cidi")
                .and_then(|c| c.get("mean_cidi_fraction")?.as_f64())
            {
                let fresh = r.mean_cidi_fraction;
                if fresh < base_v - tolerance {
                    eprintln!(
                        "cfir-analyze: {}: mean_cidi_fraction regressed {base_v:.4} -> \
                         {fresh:.4} (tolerance {tolerance:.4})",
                        r.name
                    );
                    failed = true;
                }
            }
        }
    }
    if failed {
        exit(1)
    }
    println!("cfir-analyze: check ok ({} kernels)", results.len());
}
