//! # cfir — Control-Flow Independence Reuse via Dynamic Vectorization
//!
//! A from-scratch reproduction of *Pajuelo, González, Valero —
//! "Control-Flow Independence Reuse via Dynamic Vectorization"*
//! (IPDPS 2005), as a Rust workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] | 64-register RISC ISA, assembler, program builder |
//! | [`emu`] | functional (golden-model) emulator, paged word memory |
//! | [`mem`] | L1I/L1D/L2/L3 cache hierarchy, wide-bus geometry |
//! | [`predict`] | gshare branch predictor, stride predictor |
//! | [`core`] | the paper's mechanism: MBS, NRBQ, CRP, SRSMT, spec memory |
//! | [`analyze`] | static CFG / post-dominator analysis, RCP oracle, lints |
//! | [`sim`] | execution-driven out-of-order superscalar pipeline |
//! | [`workloads`] | 12 synthetic SpecInt2000-like kernels |
//! | [`obs`] | tracing, histograms, stall attribution, JSON telemetry |
//!
//! This facade re-exports everything under one roof and is what the
//! `examples/` and integration tests build against.
//!
//! ## Quickstart
//!
//! ```
//! use cfir::prelude::*;
//!
//! // Assemble the paper's Figure 1 hammock and simulate it with the
//! // control-independence mechanism on.
//! let prog = cfir::isa::assemble(
//!     "fig1",
//!     r#"
//!         li   r1, 0
//!         li   r6, 80
//!     loop:
//!         ld   r8, 1000(r1)
//!         beq  r8, r0, else_
//!         addi r2, r2, 1
//!         jmp  ip
//!     else_:
//!         addi r3, r3, 1
//!     ip:
//!         add  r4, r4, r8
//!         addi r1, r1, 8
//!         blt  r1, r6, loop
//!         halt
//!     "#,
//! )
//! .unwrap();
//!
//! let mut mem = MemImage::new();
//! for i in 0..10u64 {
//!     mem.write(1000 + i * 8, i % 2);
//! }
//! let cfg = SimConfig::paper_baseline().with_mode(Mode::Ci);
//! let mut pipe = Pipeline::new(&prog, mem, cfg);
//! assert_eq!(pipe.run(), RunExit::Halted);
//! assert_eq!(pipe.arch_reg(4), 5, "sum of elements");
//! assert_eq!(pipe.arch_reg(2) + pipe.arch_reg(3), 10, "hammock counts");
//! ```

pub mod report;

pub use cfir_analyze as analyze;
pub use cfir_core as core;
pub use cfir_emu as emu;
pub use cfir_isa as isa;
pub use cfir_mem as mem;
pub use cfir_obs as obs;
pub use cfir_predict as predict;
pub use cfir_sample as sample;
pub use cfir_sim as sim;
pub use cfir_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use cfir_emu::{Emulator, MemImage};
    pub use cfir_isa::{assemble, Inst, Program, ProgramBuilder};
    pub use cfir_obs::Rng64;
    pub use cfir_sim::{
        harmonic_mean, run_json, Mode, Pipeline, RegFileSize, RunExit, SimConfig, SimStats,
    };
    pub use cfir_workloads::{by_name, suite, Workload, WorkloadSpec};
}
