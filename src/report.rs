//! Snapshot reading, diffing and regression gating for `cfir-report`.
//!
//! Works on the versioned JSON documents the simulator emits: either a
//! single-run snapshot ([`cfir_sim::run_json`]) or a bundle with a
//! `"runs"` array (`cfir_bench::report::report_json`, what `smoke
//! --emit-json` and the figure binaries write). Runs are matched across
//! documents by `(name, mode)`, compared metric by metric, and the
//! *gating* metrics (IPC, reuse fraction, CI-exploited fraction) decide
//! whether the new document regressed beyond a relative tolerance —
//! the contract the CI perf gate enforces against
//! `results/baselines/`.

use cfir_obs::json::{self, JsonValue};
use std::fmt::Write as _;

/// How a metric's movement is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Dropping below the baseline is a regression (e.g. IPC).
    HigherIsBetter,
    /// Rising above the baseline is a regression (e.g. cycles).
    LowerIsBetter,
    /// Reported in the diff but never gates (e.g. committed count).
    Info,
}

/// One comparable metric of a run snapshot.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// JSON key (top-level, or inside `branch_prof` — see
    /// [`extract_runs`]).
    pub key: &'static str,
    /// Direction of goodness.
    pub direction: Direction,
    /// Whether a move beyond tolerance fails the check.
    pub gating: bool,
}

/// The metrics `cfir-report diff` compares, in display order. The
/// gating set is the ISSUE's contract: IPC and the two reuse rates.
pub const METRICS: &[Metric] = &[
    Metric {
        key: "ipc",
        direction: Direction::HigherIsBetter,
        gating: true,
    },
    Metric {
        key: "reuse_fraction",
        direction: Direction::HigherIsBetter,
        gating: true,
    },
    Metric {
        key: "ci_exploited_fraction",
        direction: Direction::HigherIsBetter,
        gating: true,
    },
    Metric {
        key: "mispredict_rate",
        direction: Direction::LowerIsBetter,
        gating: false,
    },
    Metric {
        key: "wrong_path_fraction",
        direction: Direction::LowerIsBetter,
        gating: false,
    },
    Metric {
        key: "cycles",
        direction: Direction::LowerIsBetter,
        gating: false,
    },
    Metric {
        key: "committed",
        direction: Direction::Info,
        gating: false,
    },
];

/// The metrics of one run, extracted from a snapshot document.
/// `values[i]` corresponds to `METRICS[i]`; `None` when the document
/// does not carry the key (e.g. schema-v1 snapshots have no
/// `branch_prof`).
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Workload name.
    pub name: String,
    /// Machine-variant label.
    pub mode: String,
    /// One slot per [`METRICS`] entry.
    pub values: Vec<Option<f64>>,
}

impl RunMetrics {
    fn id(&self) -> (String, String) {
        (self.name.clone(), self.mode.clone())
    }
}

/// Parse a snapshot document's text, rejecting schemas newer than this
/// build understands (older ones — v1 — are fine: v2 is additive).
pub fn parse_doc(text: &str) -> Result<JsonValue, String> {
    let v = json::parse(text)?;
    match v.get("schema_version").and_then(|x| x.as_u64()) {
        None => Err("document has no schema_version".into()),
        Some(n) if n > cfir_sim::SCHEMA_VERSION as u64 => Err(format!(
            "schema_version {n} is newer than this tool understands ({})",
            cfir_sim::SCHEMA_VERSION
        )),
        Some(_) => Ok(v),
    }
}

fn extract_one(run: &JsonValue) -> Option<RunMetrics> {
    let name = run.get("name")?.as_str()?.to_string();
    let mode = run.get("mode")?.as_str()?.to_string();
    let values = METRICS
        .iter()
        .map(|m| match m.key {
            "ci_exploited_fraction" => run
                .get("branch_prof")
                .and_then(|bp| bp.get(m.key))
                .and_then(|x| x.as_f64()),
            k => run.get(k).and_then(|x| x.as_f64()),
        })
        .collect();
    Some(RunMetrics { name, mode, values })
}

/// All runs in a document: the `"runs"` array of a bundle, or the
/// document itself when it is a single-run snapshot.
pub fn extract_runs(doc: &JsonValue) -> Result<Vec<RunMetrics>, String> {
    if let Some(runs) = doc.get("runs").and_then(|r| r.as_arr()) {
        let out: Vec<RunMetrics> = runs.iter().filter_map(extract_one).collect();
        if out.is_empty() {
            return Err("bundle has an empty or malformed runs array".into());
        }
        return Ok(out);
    }
    extract_one(doc)
        .map(|r| vec![r])
        .ok_or_else(|| "document is neither a run snapshot nor a bundle with runs".into())
}

/// Parse a tolerance argument: `"2%"` → `0.02`, `"0.02"` → `0.02`.
pub fn parse_tolerance(s: &str) -> Option<f64> {
    let (num, is_pct) = match s.strip_suffix('%') {
        Some(n) => (n, true),
        None => (s, false),
    };
    let v: f64 = num.trim().parse().ok()?;
    let v = if is_pct { v / 100.0 } else { v };
    (v >= 0.0).then_some(v)
}

/// Result of diffing two documents.
#[derive(Debug)]
pub struct DiffOutcome {
    /// Human-readable per-run, per-metric delta report.
    pub report: String,
    /// Whether any gating metric regressed beyond tolerance (or a
    /// baseline run disappeared).
    pub regressed: bool,
}

fn fmt_val(v: Option<f64>) -> String {
    match v {
        Some(x) if x == x.trunc() && x.abs() < 1e15 => format!("{x}"),
        Some(x) => format!("{x:.4}"),
        None => "-".into(),
    }
}

/// The `"table"` of a bundle as `(title, rows)`, each row joined
/// header-to-cells, for textual comparison of table-only documents
/// (e.g. the Table 1 configuration snapshot).
fn extract_table(doc: &JsonValue) -> Option<(String, Vec<Vec<String>>)> {
    let title = doc.get("title")?.as_str()?.to_string();
    let rows = doc
        .get("table")?
        .get("rows")?
        .as_arr()?
        .iter()
        .map(|r| {
            r.as_arr()
                .map(|cells| {
                    cells
                        .iter()
                        .filter_map(|c| c.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    Some((title, rows))
}

/// Textual diff of two table-only documents: any changed, missing or
/// reordered baseline row is a regression (configuration drift).
fn diff_tables(old: &JsonValue, new: &JsonValue) -> Result<DiffOutcome, String> {
    let (ot, orows) = extract_table(old).ok_or("old document has no table")?;
    let (_, nrows) = extract_table(new).ok_or("new document has no table")?;
    let mut report = String::new();
    let mut regressed = false;
    let _ = writeln!(report, "{ot}: comparing {} table rows", orows.len());
    for (i, orow) in orows.iter().enumerate() {
        match nrows.get(i) {
            Some(nrow) if nrow == orow => {}
            Some(nrow) => {
                let _ = writeln!(
                    report,
                    "  row {i}: {:?} -> {:?}  CHANGED",
                    orow.join(" | "),
                    nrow.join(" | ")
                );
                regressed = true;
            }
            None => {
                let _ = writeln!(report, "  row {i}: {:?} MISSING", orow.join(" | "));
                regressed = true;
            }
        }
    }
    for (i, nrow) in nrows.iter().enumerate().skip(orows.len()) {
        let _ = writeln!(report, "  row {i}: {:?} added", nrow.join(" | "));
    }
    if !regressed {
        let _ = writeln!(report, "  all rows identical");
    }
    Ok(DiffOutcome { report, regressed })
}

/// Compare `new` against the `old` baseline. A gating metric regresses
/// when it moves in the bad direction by more than `tolerance`
/// (relative to the baseline value). Non-gating metrics are reported
/// but never fail the check. Documents that carry no runs but do carry
/// a rendered table (e.g. the Table 1 configuration dump) are compared
/// textually instead.
pub fn diff(old: &JsonValue, new: &JsonValue, tolerance: f64) -> Result<DiffOutcome, String> {
    let (old_runs, new_runs) = match (extract_runs(old), extract_runs(new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(_), Err(_)) if old.get("table").is_some() && new.get("table").is_some() => {
            return diff_tables(old, new);
        }
        (Err(e), _) | (_, Err(e)) => return Err(e),
    };
    let mut report = String::new();
    let mut regressed = false;

    for o in &old_runs {
        let Some(n) = new_runs.iter().find(|n| n.id() == o.id()) else {
            let _ = writeln!(
                report,
                "{}/{}: MISSING from new document (regression)",
                o.name, o.mode
            );
            regressed = true;
            continue;
        };
        let _ = writeln!(report, "{}/{}:", o.name, o.mode);
        for (i, m) in METRICS.iter().enumerate() {
            let (ov, nv) = (o.values[i], n.values[i]);
            let (Some(ov), Some(nv)) = (ov, nv) else {
                // Absent on either side (e.g. v1 baseline without
                // branch_prof): informational, never a regression.
                let _ = writeln!(
                    report,
                    "  {:24} {:>12} -> {:>12}",
                    m.key,
                    fmt_val(o.values[i]),
                    fmt_val(n.values[i])
                );
                continue;
            };
            let delta = nv - ov;
            let rel = if ov.abs() > 1e-12 { delta / ov } else { 0.0 };
            let bad = match m.direction {
                Direction::HigherIsBetter => -rel,
                Direction::LowerIsBetter => rel,
                Direction::Info => 0.0,
            };
            let is_regression = m.gating && bad > tolerance;
            regressed |= is_regression;
            let _ = writeln!(
                report,
                "  {:24} {:>12} -> {:>12}  ({:+.2}%){}",
                m.key,
                fmt_val(Some(ov)),
                fmt_val(Some(nv)),
                rel * 100.0,
                if is_regression { "  REGRESSION" } else { "" }
            );
        }
    }
    for n in &new_runs {
        if !old_runs.iter().any(|o| o.id() == n.id()) {
            let _ = writeln!(report, "{}/{}: new run (no baseline)", n.name, n.mode);
        }
    }
    Ok(DiffOutcome { report, regressed })
}

/// Total `lifecycle.dropped` across every run of a document. A nonzero
/// count means the per-instruction recorder overflowed its ring and
/// the bottleneck DAG (critical path, what-if projections) is built
/// from an incomplete record set — `cfir-report` warns loudly, and
/// `check` treats it as a failure.
pub fn lifecycle_dropped(doc: &JsonValue) -> u64 {
    let runs: Vec<&JsonValue> = match doc.get("runs").and_then(|r| r.as_arr()) {
        Some(rs) => rs.iter().collect(),
        None => vec![doc],
    };
    runs.iter()
        .filter_map(|r| r.get("lifecycle"))
        .filter_map(|lc| lc.get("dropped"))
        .filter_map(|d| d.as_u64())
        .sum()
}

const BAR_COLS: f64 = 40.0;

fn bar(frac: f64) -> String {
    let n = (frac.clamp(0.0, 1.0) * BAR_COLS).round() as usize;
    "#".repeat(n)
}

/// Render one run's `bottleneck` object: the hierarchical CPI stack as
/// bars, the critical-path class attribution and top edges, and the
/// what-if speed-limit table.
fn render_bottleneck_run(out: &mut String, run: &JsonValue) {
    let s = |k: &str| run.get(k).and_then(|x| x.as_str()).unwrap_or("?");
    let _ = writeln!(out, "\n{} / {}", s("name"), s("mode"));
    let Some(b) = run.get("bottleneck") else {
        let _ = writeln!(out, "  (no bottleneck object: pre-v5 snapshot)");
        return;
    };
    if let Some(stack) = b.get("cpi_stack") {
        let total: u64 = cfir_obs::critpath::CPI_GROUPS
            .iter()
            .filter_map(|k| stack.get(k).and_then(|x| x.as_u64()))
            .sum();
        let _ = writeln!(out, "  CPI stack ({total} commit slots):");
        for key in cfir_obs::critpath::CPI_GROUPS {
            let n = stack.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
            let frac = if total > 0 {
                n as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "    {key:16} {:>10}  {:>6.2}%  {}",
                n,
                frac * 100.0,
                bar(frac)
            );
        }
    }
    if let Some(cp) = b.get("critical_path") {
        let g = |k: &str| cp.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        let span = g("span");
        let _ = writeln!(
            out,
            "  critical path: span={span} cycles (start {}, {} steps)",
            g("start_cycle"),
            g("steps")
        );
        if let Some(classes) = cp.get("classes") {
            let mut rows: Vec<(&str, u64)> = cfir_obs::critpath::ALL_CLASSES
                .iter()
                .map(|c| c.key())
                .filter_map(|k| {
                    classes
                        .get(k)
                        .and_then(|x| x.as_u64())
                        .filter(|&n| n > 0)
                        .map(|n| (k, n))
                })
                .collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            for (k, n) in rows {
                let frac = if span > 0 {
                    n as f64 / span as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "    {k:20} {n:>10}  {:>6.2}%  {}",
                    frac * 100.0,
                    bar(frac)
                );
            }
        }
        if let Some(edges) = cp.get("edges").and_then(|e| e.as_arr()) {
            let _ = writeln!(out, "  top critical-path segments:");
            for e in edges.iter().take(10) {
                let gu = |k: &str| e.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "    pc {:>#8x}  {:20} {:>8} cycles",
                    gu("pc"),
                    e.get("class").and_then(|x| x.as_str()).unwrap_or("?"),
                    gu("cycles")
                );
            }
        }
        if let Some(brs) = cp.get("branches").and_then(|e| e.as_arr()) {
            if !brs.is_empty() {
                // Join against the PR-2 scorecard rows of the same run:
                // refetch cycles are the remaining per-branch headroom,
                // reuse commits / cycles saved what the CI mechanism
                // already recovered at that site.
                let scorecard = run
                    .get("branch_prof")
                    .and_then(|bp| bp.get("branches"))
                    .and_then(|b| b.as_arr());
                let prof = |pc: u64, key: &str| -> u64 {
                    scorecard
                        .and_then(|rows| {
                            rows.iter()
                                .find(|r| r.get("pc").and_then(|x| x.as_u64()) == Some(pc))
                        })
                        .and_then(|r| r.get(key))
                        .and_then(|x| x.as_u64())
                        .unwrap_or(0)
                };
                let _ = writeln!(
                    out,
                    "  per-branch headroom (critical-path refetch vs scorecard recovery):\n    \
                     {:>10} {:>14} {:>13} {:>13}",
                    "pc", "refetch_cycles", "reuse_commits", "cycles_saved"
                );
                for e in brs.iter().take(10) {
                    let gu = |k: &str| e.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
                    let pc = gu("pc");
                    let _ = writeln!(
                        out,
                        "    {pc:>#10x} {:>14} {:>13} {:>13}",
                        gu("refetch_cycles"),
                        prof(pc, "reuse_commits"),
                        prof(pc, "cycles_saved")
                    );
                }
            }
        }
    }
    if let Some(rows) = b.get("whatif").and_then(|x| x.as_arr()) {
        let _ = writeln!(
            out,
            "  what-if speed limits:\n    {:24} {:>12} {:>9}",
            "scenario", "cycles", "speedup"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "    {:24} {:>12} {:>8.2}x",
                r.get("scenario").and_then(|x| x.as_str()).unwrap_or("?"),
                r.get("projected_cycles")
                    .and_then(|x| x.as_u64())
                    .unwrap_or(0),
                r.get("speedup").and_then(|x| x.as_f64()).unwrap_or(1.0)
            );
        }
    }
}

/// Pretty-print the bottleneck analysis of a document (every run of a
/// bundle), or — with `old` present — the cross-run diff: CPI-group
/// share deltas and what-if speedup movement per `(name, mode)`.
pub fn render_bottleneck(doc: &JsonValue, old: Option<&JsonValue>) -> Result<String, String> {
    let runs = |d: &JsonValue| -> Vec<JsonValue> {
        match d.get("runs").and_then(|r| r.as_arr()) {
            Some(rs) => rs.to_vec(),
            None => vec![d.clone()],
        }
    };
    let mut out = String::new();
    let new_runs = runs(doc);
    if new_runs.iter().all(|r| r.get("bottleneck").is_none()) {
        return Err("document carries no bottleneck objects (pre-v5 snapshot?)".into());
    }
    let Some(old) = old else {
        for run in &new_runs {
            render_bottleneck_run(&mut out, run);
        }
        return Ok(out);
    };
    // Diff mode: per-run CPI-group shares and what-if speedups.
    let old_runs = runs(old);
    let id = |r: &JsonValue| {
        (
            r.get("name")
                .and_then(|x| x.as_str())
                .unwrap_or("?")
                .to_string(),
            r.get("mode")
                .and_then(|x| x.as_str())
                .unwrap_or("?")
                .to_string(),
        )
    };
    for n in &new_runs {
        let Some(o) = old_runs.iter().find(|o| id(o) == id(n)) else {
            let _ = writeln!(out, "{}/{}: new run (no baseline)", id(n).0, id(n).1);
            continue;
        };
        let _ = writeln!(out, "{}/{}:", id(n).0, id(n).1);
        let stack = |r: &JsonValue, k: &str| {
            r.get("bottleneck")
                .and_then(|b| b.get("cpi_stack"))
                .and_then(|s| s.get(k))
                .and_then(|x| x.as_u64())
                .unwrap_or(0)
        };
        let total = |r: &JsonValue| -> u64 {
            cfir_obs::critpath::CPI_GROUPS
                .iter()
                .map(|k| stack(r, k))
                .sum()
        };
        let (ot, nt) = (total(o).max(1), total(n).max(1));
        for key in cfir_obs::critpath::CPI_GROUPS {
            let of = stack(o, key) as f64 / ot as f64 * 100.0;
            let nf = stack(n, key) as f64 / nt as f64 * 100.0;
            let _ = writeln!(
                out,
                "  {key:16} {of:>6.2}% -> {nf:>6.2}%  ({:+.2}pp)",
                nf - of
            );
        }
        let speedup = |r: &JsonValue, scen: &str| {
            r.get("bottleneck")
                .and_then(|b| b.get("whatif"))
                .and_then(|w| w.as_arr())
                .and_then(|rows| {
                    rows.iter()
                        .find(|x| x.get("scenario").and_then(|s| s.as_str()) == Some(scen))
                })
                .and_then(|x| x.get("speedup"))
                .and_then(|x| x.as_f64())
        };
        for scen in [
            "perfect_bp",
            "infinite_replica_buffer",
            "perfect_ci_reuse",
            "perfect_everything",
        ] {
            if let (Some(os), Some(ns)) = (speedup(o, scen), speedup(n, scen)) {
                let _ = writeln!(out, "  whatif {scen:24} {os:>6.2}x -> {ns:>6.2}x");
            }
        }
    }
    Ok(out)
}

/// Pretty-print the dataflow-oracle view of a document (every run of a
/// bundle): the static-CIDI vs runtime-reuse agreement summary plus the
/// per-branch rows that actually had outcomes scored.
pub fn render_cidi(doc: &JsonValue) -> Result<String, String> {
    let runs: Vec<&JsonValue> = match doc.get("runs").and_then(|r| r.as_arr()) {
        Some(rs) => rs.iter().collect(),
        None => vec![doc],
    };
    if runs.iter().all(|r| r.get("dataflow_oracle").is_none()) {
        return Err("document carries no dataflow_oracle objects (pre-v6 snapshot?)".into());
    }
    let mut out = String::new();
    for run in runs {
        let s = |k: &str| run.get(k).and_then(|x| x.as_str()).unwrap_or("?");
        let _ = writeln!(out, "\n{} / {}", s("name"), s("mode"));
        let Some(d) = run.get("dataflow_oracle") else {
            let _ = writeln!(out, "  (no dataflow_oracle object: pre-v6 snapshot)");
            continue;
        };
        let g = |k: &str| d.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        let agreement = d
            .get("cidi_agreement")
            .and_then(|x| x.as_f64())
            .unwrap_or(1.0);
        let _ = writeln!(
            out,
            "  outcomes scored: {} (agreement {:.2}%)  {}",
            g("cidi_checked"),
            agreement * 100.0,
            bar(agreement)
        );
        let _ = writeln!(
            out,
            "  CIDI predicted clean but repaired: {}\n  \
             CIDD/clobbered predicted repair but reused clean: {}\n  \
             mechanism repairs (broken pairing, excluded from scoring): {}\n  \
             unclassified outcomes (no verdict or no event): {}",
            g("cidi_predicted_failures"),
            g("cidd_clean_reuses"),
            g("mechanism_repairs"),
            g("unclassified")
        );
        let rows = run
            .get("branch_prof")
            .and_then(|bp| bp.get("branches"))
            .and_then(|b| b.as_arr());
        let Some(rows) = rows else { continue };
        let scored: Vec<&JsonValue> = rows
            .iter()
            .filter(|r| r.get("cidi_checks").and_then(|x| x.as_u64()).unwrap_or(0) > 0)
            .collect();
        if scored.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  per-branch agreement:\n    {:>10} {:>12} {:>11} {:>9}",
            "pc", "cidi_checks", "cidi_agree", "rate"
        );
        for r in scored.iter().take(10) {
            let gu = |k: &str| r.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
            let (checks, agree) = (gu("cidi_checks"), gu("cidi_agree"));
            let _ = writeln!(
                out,
                "    {:>#10x} {checks:>12} {agree:>11} {:>8.2}%",
                gu("pc"),
                agree as f64 / checks.max(1) as f64 * 100.0
            );
        }
    }
    Ok(out)
}

/// Pretty-print the statistical-sampling view of a document: per-run
/// sampling parameters, window tables and mean ± 95% CI estimates
/// (the schema-v7 `sampling` object). When `full` is given, sampled
/// runs are matched against its runs by `(name, mode)` and a
/// full-vs-sampled error table is appended: relative error of each
/// estimate against the full detailed value and whether the CI covers
/// it.
pub fn render_sampling(doc: &JsonValue, full: Option<&JsonValue>) -> Result<String, String> {
    let runs: Vec<&JsonValue> = match doc.get("runs").and_then(|r| r.as_arr()) {
        Some(rs) => rs.iter().collect(),
        None => vec![doc],
    };
    let sampled: Vec<&JsonValue> = runs
        .iter()
        .copied()
        .filter(|r| r.get("sampling").is_some())
        .collect();
    if sampled.is_empty() {
        return Err("document carries no sampling objects (not a cfir-sample run?)".into());
    }

    // Index the full-detailed reference runs by (name, mode) for the
    // error table: (ipc, reuse_fraction,
    // branch_prof.ci_exploited_fraction). With no second document the
    // sampled document itself serves as the reference — a mixed
    // bundle (what `cfir-suite exp_sampling --emit-json` writes)
    // carries the full runs alongside the sampled ones. Runs that are
    // themselves sampled never act as references.
    let mut full_runs: Vec<(String, String, f64, f64, f64)> = Vec::new();
    {
        let fd = full.unwrap_or(doc);
        let frs: Vec<&JsonValue> = match fd.get("runs").and_then(|r| r.as_arr()) {
            Some(rs) => rs.iter().collect(),
            None => vec![fd],
        };
        for r in frs.iter().filter(|r| r.get("sampling").is_none()) {
            let s = |k: &str| r.get(k).and_then(|x| x.as_str()).unwrap_or("?").to_string();
            let f = |k: &str| r.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
            let ci = r
                .get("branch_prof")
                .and_then(|bp| bp.get("ci_exploited_fraction"))
                .and_then(|x| x.as_f64())
                .unwrap_or(0.0);
            full_runs.push((s("name"), s("mode"), f("ipc"), f("reuse_fraction"), ci));
        }
    }

    let mut out = String::new();
    for run in sampled {
        let s = |k: &str| run.get(k).and_then(|x| x.as_str()).unwrap_or("?");
        let sam = run.get("sampling").expect("filtered on presence");
        let g = |k: &str| sam.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        let _ = writeln!(out, "\n{} / {}", s("name"), s("mode"));
        let _ = writeln!(
            out,
            "  period {} / warmup {} / window {} — {} fast-forwarded, {} detailed{}",
            g("period"),
            g("warmup"),
            g("window"),
            g("ff_insts"),
            g("detailed_insts"),
            if sam.get("halted") == Some(&JsonValue::Bool(true)) {
                ", halted"
            } else {
                ""
            }
        );

        // est name -> (n, mean, half_width)
        let est = |k: &str| -> (u64, f64, f64) {
            let Some(e) = sam.get(k) else {
                return (0, 0.0, 0.0);
            };
            (
                e.get("n").and_then(|x| x.as_u64()).unwrap_or(0),
                e.get("mean").and_then(|x| x.as_f64()).unwrap_or(0.0),
                e.get("half_width").and_then(|x| x.as_f64()).unwrap_or(0.0),
            )
        };
        let full_vals = full_runs
            .iter()
            .find(|(n, m, ..)| n == s("name") && m == s("mode"));
        let _ = writeln!(
            out,
            "  {:<13} {:>3} {:>9} {:>9}{}",
            "metric",
            "n",
            "mean",
            "hw95",
            if full_vals.is_some() {
                "      full    err%  covered"
            } else {
                ""
            }
        );
        for (label, key, pick) in [
            ("IPC", "ipc", 0usize),
            ("reuse rate", "reuse_rate", 1),
            ("CI exploited", "ci_exploited", 2),
        ] {
            let (n, mean, hw) = est(key);
            let _ = write!(out, "  {label:<13} {n:>3} {mean:>9.4} {hw:>9.4}");
            if let Some((_, _, fi, fr, fc)) = full_vals {
                let fv = [*fi, *fr, *fc][pick];
                let err = if fv != 0.0 {
                    (mean - fv).abs() / fv.abs() * 100.0
                } else {
                    0.0
                };
                let covered = n >= 2 && (fv - mean).abs() <= hw;
                let _ = write!(
                    out,
                    "  {fv:>8.4} {err:>6.2}%  {}",
                    if covered { "yes" } else { "no" }
                );
            }
            let _ = writeln!(out);
        }

        if let Some(wins) = sam.get("windows").and_then(|w| w.as_arr()) {
            let _ = writeln!(
                out,
                "  {:>6} {:>11} {:>17} {:>9} {:>7} {:>6} {:>7} {:>8}",
                "window",
                "start_inst",
                "checkpoint",
                "committed",
                "cycles",
                "ipc",
                "reuse",
                "ci_expl"
            );
            const SHOWN: usize = 16;
            for (k, w) in wins.iter().take(SHOWN).enumerate() {
                let u = |k: &str| w.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
                let f = |k: &str| w.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {k:>6} {:>11} {:>17} {:>9} {:>7} {:>6.3} {:>7.4} {:>8.4}",
                    u("start_inst"),
                    w.get("checkpoint").and_then(|x| x.as_str()).unwrap_or("?"),
                    u("committed"),
                    u("cycles"),
                    f("ipc"),
                    f("reuse_rate"),
                    f("ci_exploited")
                );
            }
            if wins.len() > SHOWN {
                let _ = writeln!(out, "  … and {} more windows", wins.len() - SHOWN);
            }
        }
    }
    Ok(out)
}

/// Pretty-print a snapshot document: headline metrics per run, the
/// top of the per-branch scorecard, and histogram percentiles.
pub fn render(doc: &JsonValue) -> String {
    let mut out = String::new();
    if let Some(title) = doc.get("title").and_then(|t| t.as_str()) {
        let _ = writeln!(out, "== {title} ==");
    }
    let runs: Vec<&JsonValue> = match doc.get("runs").and_then(|r| r.as_arr()) {
        Some(rs) => rs.iter().collect(),
        None => vec![doc],
    };
    if runs.is_empty() {
        // Table-only bundle (e.g. the Table 1 configuration dump).
        if let Some((_, rows)) = extract_table(doc) {
            for row in rows {
                let _ = writeln!(out, "  {}", row.join("  |  "));
            }
        }
        return out;
    }
    for run in runs {
        render_run(&mut out, run);
    }
    out
}

fn render_run(out: &mut String, run: &JsonValue) {
    let s = |k: &str| {
        run.get(k)
            .and_then(|x| x.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let f = |k: &str| run.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let _ = writeln!(out, "\n{} / {}", s("name"), s("mode"));
    let _ = writeln!(
        out,
        "  ipc={:.3}  cycles={}  committed={}  reuse={:.2}%  mispredict={:.2}%  wrong-path={:.2}%",
        f("ipc"),
        f("cycles") as u64,
        f("committed") as u64,
        f("reuse_fraction") * 100.0,
        f("mispredict_rate") * 100.0,
        f("wrong_path_fraction") * 100.0,
    );
    if let Some(h) = run.get("histograms") {
        for key in [
            "load_to_use",
            "branch_resolve",
            "reuse_wait",
            "flush_recovery",
        ] {
            let Some(hist) = h.get(key) else { continue };
            let g = |k: &str| hist.get(k).and_then(|x| x.as_u64());
            if let (Some(n), Some(p50), Some(p90), Some(p99)) =
                (g("count"), g("p50"), g("p90"), g("p99"))
            {
                let _ = writeln!(
                    out,
                    "  {key:16} n={n}  p50={p50}  p90={p90}  p99={p99}  max={}",
                    g("max").unwrap_or(0)
                );
            }
        }
    }
    let Some(bp) = run.get("branch_prof") else {
        return;
    };
    let _ = writeln!(
        out,
        "  CI exploited for {:.1}% of mispredictions across {} static branches",
        bp.get("ci_exploited_fraction")
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0)
            * 100.0,
        bp.get("static_branches")
            .and_then(|x| x.as_u64())
            .unwrap_or(0),
    );
    let Some(rows) = bp.get("branches").and_then(|b| b.as_arr()) else {
        return;
    };
    let _ = writeln!(
        out,
        "  {:>8} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>10}",
        "pc", "executed", "mispred", "events", "ev-reuse", "reuses", "wasted", "cyc-saved"
    );
    for row in rows.iter().take(10) {
        let g = |k: &str| row.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        let _ = writeln!(
            out,
            "  {:>#8x} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8} {:>10}",
            g("pc"),
            g("executed"),
            g("mispredicts"),
            g("events"),
            g("events_reused"),
            g("reuse_commits"),
            g("replicas_wasted"),
            g("cycles_saved"),
        );
    }
    if rows.len() > 10 {
        let _ = writeln!(out, "  ... {} more branches", rows.len() - 10);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str, mode: &str, ipc: f64, reuse: f64) -> String {
        format!(
            r#"{{"schema_version":2,"name":"{name}","mode":"{mode}","ipc":{ipc},
               "reuse_fraction":{reuse},"mispredict_rate":0.05,
               "wrong_path_fraction":0.3,"cycles":1000,"committed":2500,
               "branch_prof":{{"static_branches":1,"ci_exploited_fraction":0.5,
                 "totals":{{}},"unattributed":{{}},"branches":[]}}}}"#
        )
    }

    fn bundle(runs: &[String]) -> String {
        format!(
            r#"{{"schema_version":2,"title":"t","table":{{"header":[],"rows":[]}},"runs":[{}]}}"#,
            runs.join(",")
        )
    }

    #[test]
    fn tolerance_parsing() {
        assert_eq!(parse_tolerance("2%"), Some(0.02));
        assert_eq!(parse_tolerance("0.02"), Some(0.02));
        assert_eq!(parse_tolerance("0"), Some(0.0));
        assert_eq!(parse_tolerance("-1"), None);
        assert_eq!(parse_tolerance("x"), None);
    }

    #[test]
    fn schema_gatekeeping() {
        assert!(parse_doc(r#"{"ipc":1.0}"#).is_err(), "no version");
        assert!(parse_doc(r#"{"schema_version":99}"#).is_err(), "too new");
        assert!(parse_doc(r#"{"schema_version":1}"#).is_ok(), "v1 ok");
    }

    #[test]
    fn single_and_bundle_extraction() {
        let one = parse_doc(&snap("bzip2", "ci", 2.0, 0.1)).unwrap();
        let rs = extract_runs(&one).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].name, "bzip2");
        // ci_exploited_fraction comes from branch_prof.
        let idx = METRICS
            .iter()
            .position(|m| m.key == "ci_exploited_fraction")
            .unwrap();
        assert_eq!(rs[0].values[idx], Some(0.5));

        let b = parse_doc(&bundle(&[
            snap("a", "ci", 1.0, 0.1),
            snap("a", "scal", 0.8, 0.0),
        ]))
        .unwrap();
        let rs = extract_runs(&b).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].mode, "scal");
    }

    #[test]
    fn identical_documents_never_regress() {
        let d = parse_doc(&snap("b", "ci", 2.0, 0.12)).unwrap();
        let o = diff(&d, &d, 0.0).unwrap();
        assert!(!o.regressed, "{}", o.report);
        assert!(o.report.contains("ipc"));
    }

    #[test]
    fn ipc_drop_beyond_tolerance_regresses() {
        let old = parse_doc(&snap("b", "ci", 2.0, 0.12)).unwrap();
        let new = parse_doc(&snap("b", "ci", 1.9, 0.12)).unwrap();
        // 5% drop: fails a 2% gate, passes a 10% gate.
        let tight = diff(&old, &new, 0.02).unwrap();
        assert!(tight.regressed);
        assert!(tight.report.contains("REGRESSION"));
        let loose = diff(&old, &new, 0.10).unwrap();
        assert!(!loose.regressed, "{}", loose.report);
    }

    #[test]
    fn reuse_drop_regresses_and_improvement_does_not() {
        let old = parse_doc(&snap("b", "ci", 2.0, 0.12)).unwrap();
        let worse = parse_doc(&snap("b", "ci", 2.0, 0.05)).unwrap();
        assert!(diff(&old, &worse, 0.02).unwrap().regressed);
        let better = parse_doc(&snap("b", "ci", 2.5, 0.20)).unwrap();
        assert!(!diff(&old, &better, 0.02).unwrap().regressed);
    }

    #[test]
    fn missing_baseline_run_is_a_regression() {
        let old = parse_doc(&bundle(&[
            snap("a", "ci", 1.0, 0.1),
            snap("a", "scal", 0.8, 0.0),
        ]))
        .unwrap();
        let new = parse_doc(&bundle(&[snap("a", "ci", 1.0, 0.1)])).unwrap();
        let o = diff(&old, &new, 0.02).unwrap();
        assert!(o.regressed);
        assert!(o.report.contains("MISSING"));
        // The reverse (extra new run) is fine.
        let o = diff(&new, &old, 0.02).unwrap();
        assert!(!o.regressed, "{}", o.report);
        assert!(o.report.contains("new run"));
    }

    #[test]
    fn v1_baseline_without_branch_prof_still_checks() {
        // A v1 snapshot has no branch_prof: the ci_exploited_fraction
        // column is informational, the IPC gate still applies.
        let v1 = parse_doc(
            r#"{"schema_version":1,"name":"b","mode":"ci","ipc":2.0,
                "reuse_fraction":0.12,"mispredict_rate":0.05,
                "wrong_path_fraction":0.3,"cycles":1000,"committed":2500}"#,
        )
        .unwrap();
        let v2 = parse_doc(&snap("b", "ci", 1.5, 0.12)).unwrap();
        let o = diff(&v1, &v2, 0.02).unwrap();
        assert!(o.regressed, "IPC 2.0 -> 1.5 must fail the gate");
    }

    #[test]
    fn table_only_documents_diff_textually() {
        let t1 = r#"{"schema_version":2,"title":"Table 1",
            "table":{"header":["parameter","value"],
                     "rows":[["Fetch width","8"],["Commit width","8"]]},
            "runs":[]}"#;
        let t2 = r#"{"schema_version":2,"title":"Table 1",
            "table":{"header":["parameter","value"],
                     "rows":[["Fetch width","4"],["Commit width","8"]]},
            "runs":[]}"#;
        let a = parse_doc(t1).unwrap();
        let b = parse_doc(t2).unwrap();
        let same = diff(&a, &a, 0.02).unwrap();
        assert!(!same.regressed, "{}", same.report);
        let drift = diff(&a, &b, 0.02).unwrap();
        assert!(drift.regressed, "config drift must gate");
        assert!(drift.report.contains("CHANGED"));
        // Pretty-printing a table-only doc shows the rows.
        assert!(render(&a).contains("Fetch width"));
    }

    fn bsnap(name: &str, mode: &str, dropped: u64, base: u64, mem: u64, bp_speedup: f64) -> String {
        format!(
            r#"{{"schema_version":5,"name":"{name}","mode":"{mode}","ipc":1.0,
               "cycles":1000,"committed":2500,
               "lifecycle":{{"records":10,"dropped":{dropped}}},
               "branch_prof":{{"static_branches":1,"ci_exploited_fraction":0.5,
                 "totals":{{}},"unattributed":{{}},
                 "branches":[{{"pc":40,"reuse_commits":12,"cycles_saved":34}}]}},
               "bottleneck":{{
                 "cpi_stack":{{"base":{base},"reuse_recovered":0,"frontend":100,
                   "bad_speculation":200,"backend_memory":{mem},"backend_core":100}},
                 "critical_path":{{"span":900,"start_cycle":0,"steps":40,
                   "classes":{{"cache_mem":500,"mispredict_refetch":300,"commit":100}},
                   "edges":[{{"pc":64,"class":"cache_mem","cycles":500}}],
                   "branches":[{{"pc":40,"refetch_cycles":300}}]}},
                 "whatif":[
                   {{"scenario":"perfect_bp","projected_cycles":700,"speedup":{bp_speedup}}},
                   {{"scenario":"perfect_everything","projected_cycles":500,"speedup":2.0}}]}}}}"#
        )
    }

    #[test]
    fn dropped_lifecycle_records_are_detected() {
        let clean = parse_doc(&bsnap("b", "ci", 0, 2000, 500, 1.4)).unwrap();
        assert_eq!(lifecycle_dropped(&clean), 0);
        let dirty = parse_doc(&bsnap("b", "ci", 7, 2000, 500, 1.4)).unwrap();
        assert_eq!(lifecycle_dropped(&dirty), 7);
        // Pre-v4 documents without a lifecycle object count as zero.
        let v1 = parse_doc(r#"{"schema_version":1,"ipc":1.0}"#).unwrap();
        assert_eq!(lifecycle_dropped(&v1), 0);
    }

    #[test]
    fn bottleneck_render_shows_stack_path_and_whatif() {
        let d = parse_doc(&bsnap("bzip2", "ci", 0, 2000, 500, 1.4)).unwrap();
        let out = render_bottleneck(&d, None).unwrap();
        assert!(out.contains("bzip2 / ci"), "{out}");
        assert!(out.contains("CPI stack"), "{out}");
        assert!(out.contains("backend_memory"), "{out}");
        assert!(out.contains("span=900"), "{out}");
        assert!(out.contains("cache_mem"), "{out}");
        assert!(out.contains("perfect_bp"), "{out}");
        assert!(out.contains("1.40x"), "{out}");
        // The per-branch table joins refetch cycles against the PR-2
        // scorecard row of the same pc.
        assert!(out.contains("per-branch headroom"), "{out}");
        let br = out
            .lines()
            .find(|l| l.trim_start().starts_with("0x28"))
            .unwrap_or_else(|| panic!("no joined branch row in {out}"));
        assert!(br.contains("300"), "{br}");
        assert!(br.contains("12"), "{br}");
        assert!(br.contains("34"), "{br}");
        // A document with no bottleneck objects at all is an error.
        let v1 = parse_doc(r#"{"schema_version":1,"ipc":1.0}"#).unwrap();
        assert!(render_bottleneck(&v1, None).is_err());
    }

    #[test]
    fn cidi_render_shows_oracle_summary_and_branch_rows() {
        let d = parse_doc(
            r#"{"schema_version":6,"name":"twolf","mode":"ci","ipc":1.0,
               "branch_prof":{"static_branches":1,
                 "totals":{},"unattributed":{},
                 "branches":[{"pc":40,"cidi_checks":8,"cidi_agree":6},
                             {"pc":44,"cidi_checks":0,"cidi_agree":0}]},
               "dataflow_oracle":{"cidi_checked":8,"cidi_agreed":6,
                 "cidi_agreement":0.75,"cidi_predicted_failures":2,
                 "cidd_clean_reuses":0,"unclassified":3}}"#,
        )
        .unwrap();
        let out = render_cidi(&d).unwrap();
        assert!(out.contains("twolf / ci"), "{out}");
        assert!(out.contains("outcomes scored: 8"), "{out}");
        assert!(out.contains("75.00%"), "{out}");
        assert!(out.contains("repaired: 2"), "{out}");
        assert!(
            out.contains("unclassified outcomes (no verdict or no event): 3"),
            "{out}"
        );
        // Only the branch with scored outcomes appears in the table.
        assert!(out.contains("0x28"), "{out}");
        assert!(!out.contains("0x2c"), "{out}");
        // A document with no dataflow_oracle objects at all is an error.
        let v5 = parse_doc(&bsnap("b", "ci", 0, 2000, 500, 1.4)).unwrap();
        assert!(render_cidi(&v5).is_err());
    }

    #[test]
    fn bottleneck_diff_reports_share_and_speedup_movement() {
        let old = parse_doc(&bsnap("b", "ci", 0, 2000, 500, 1.4)).unwrap();
        let new = parse_doc(&bsnap("b", "ci", 0, 1500, 1000, 1.8)).unwrap();
        let out = render_bottleneck(&new, Some(&old)).unwrap();
        assert!(out.contains("b/ci:"), "{out}");
        assert!(out.contains("backend_memory"), "{out}");
        assert!(out.contains("pp)"), "{out}");
        assert!(out.contains("1.40x"), "{out}");
        assert!(out.contains("1.80x"), "{out}");
    }

    #[test]
    fn render_shows_headlines_and_scorecard() {
        let d = parse_doc(&snap("bzip2", "ci", 2.0, 0.1)).unwrap();
        let r = render(&d);
        assert!(r.contains("bzip2 / ci"));
        assert!(r.contains("ipc=2.000"));
        assert!(r.contains("CI exploited for 50.0%"));
    }
}
