//! Pipeview quickstart: run the gzip kernel on the CI machine with the
//! per-instruction lifecycle recorder on, write the Konata trace, and
//! render an ASCII timeline zoomed on the first misprediction flush —
//! the view where squashed wrong-path instructions and surviving
//! reused replicas are visibly different things.
//!
//! ```sh
//! cargo run --release --example pipeview_timeline
//! ```

use cfir::prelude::*;

fn main() {
    let spec = WorkloadSpec {
        iters: 1 << 30,
        elems: 1024,
        seed: 5,
    };
    let w = by_name("gzip", spec).expect("gzip kernel");
    let mut cfg = SimConfig::paper_baseline()
        .with_mode(Mode::Ci)
        .with_regs(RegFileSize::Finite(512))
        .with_max_insts(20_000);
    cfg.cosim_check = false;

    let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    pipe.enable_pipeview("target/gzip-ci.kanata", 1 << 20);
    pipe.run();

    let s = &pipe.stats;
    println!(
        "gzip/ci: {} committed, {} squashed, {} replicas, {} lifecycle records",
        s.committed, s.squashed, s.replicas_executed, s.lifecycle_records
    );

    // Same rendering path as `cfir-report timeline target/gzip-ci.kanata
    // --around-mispredict 1`, done in-process.
    let text = std::fs::read_to_string("target/gzip-ci.kanata").expect("trace written");
    let trace = cfir::obs::parse_konata(&text).expect("round-trips");
    let opts = cfir::obs::TimelineOpts {
        around_mispredict: Some(1),
        ..Default::default()
    };
    match cfir::obs::render_timeline(&trace, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => println!("(no timeline: {e})"),
    }
}
