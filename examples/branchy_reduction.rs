//! Branchy reduction — run the full synthetic SpecInt-like suite in
//! every machine mode and print a per-benchmark IPC table plus the
//! suite harmonic means (the format of the paper's per-benchmark
//! figures).
//!
//! ```sh
//! cargo run --release --example branchy_reduction
//! ```
//!
//! Environment knobs: `CFIR_EX_INSTS` (committed instructions per run,
//! default 100_000).

use cfir::prelude::*;

fn main() {
    let insts: u64 = std::env::var("CFIR_EX_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let modes = [
        Mode::Scalar,
        Mode::WideBus,
        Mode::CiIw,
        Mode::Ci,
        Mode::Vect,
    ];

    println!(
        "{:10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "scal", "wb", "ci-iw", "ci", "vect"
    );
    println!("{}", "-".repeat(56));

    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); modes.len()];
    for w in suite(WorkloadSpec::default()) {
        let mut row = format!("{:10}", w.name);
        for (mi, mode) in modes.into_iter().enumerate() {
            let cfg = SimConfig::paper_baseline()
                .with_mode(mode)
                .with_regs(RegFileSize::Finite(512))
                .with_max_insts(insts);
            let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), cfg);
            pipe.run();
            let ipc = pipe.stats.ipc();
            per_mode[mi].push(ipc);
            row.push_str(&format!(" {ipc:8.3}"));
        }
        println!("{row}");
    }
    println!("{}", "-".repeat(56));
    let mut hm_row = format!("{:10}", "HMEAN");
    for ipcs in &per_mode {
        hm_row.push_str(&format!(" {:8.3}", harmonic_mean(ipcs)));
    }
    println!("{hm_row}");

    let base = harmonic_mean(&per_mode[1]);
    let ci = harmonic_mean(&per_mode[3]);
    println!(
        "\nci over wide-bus baseline: {:+.1}% (the paper reports +14 .. +17.8%)",
        (ci / base - 1.0) * 100.0
    );
}
