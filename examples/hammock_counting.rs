//! Hammock counting — sweep the *predictability* of the hammock branch
//! and watch the mechanism's benefit grow with the misprediction rate.
//!
//! The paper's motivation: control-independence reuse pays off exactly
//! where branch predictors fail. This example generates the Figure-1
//! loop with a configurable probability that an element is zero, from
//! perfectly biased (gshare nails it) to 50/50 (hopeless), and prints
//! the ci-over-baseline speedup per point.
//!
//! ```sh
//! cargo run --release --example hammock_counting
//! ```

use cfir::prelude::*;
use cfir_isa::{AluOp, Cond};

/// Build the Figure-1 loop with `ProgramBuilder` (the assembler-free
/// path a workload generator would take).
fn hammock_program(elems: u64, iters: u64) -> Program {
    let mut b = ProgramBuilder::new("hammock");
    b.li(1, 0); // byte index
    b.li(5, 0x1_0000); // base
    b.li(6, (elems * 8) as i64); // wrap limit
    b.li(9, iters as i64);
    b.li(10, 0); // iteration counter
    let top = b.label_here();
    b.alu(AluOp::Add, 7, 5, 1);
    b.ld(8, 7, 0);
    let else_ = b.label();
    let ip = b.label();
    b.br(Cond::Eq, 8, 0, else_);
    b.alui(AluOp::Add, 2, 2, 1);
    b.jmp(ip);
    b.bind(else_);
    b.alui(AluOp::Add, 3, 3, 1);
    b.bind(ip);
    b.alu(AluOp::Add, 4, 4, 8); // control independent
    b.alui(AluOp::Add, 1, 1, 8);
    let wrap = b.label();
    b.br(Cond::Lt, 1, 6, wrap);
    b.li(1, 0);
    b.bind(wrap);
    b.alui(AluOp::Add, 10, 10, 1);
    b.br(Cond::Lt, 10, 9, top);
    b.halt();
    b.finish()
}

fn data(elems: u64, zero_percent: u32, seed: u64) -> MemImage {
    let mut mem = MemImage::new();
    let mut x = seed | 1;
    for i in 0..elems {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let v = if (x % 100) < zero_percent as u64 {
            0
        } else {
            1 + (x & 0xF)
        };
        mem.write(0x1_0000 + i * 8, v);
    }
    mem
}

fn main() {
    let elems = 4096u64;
    let iters = 30_000u64;
    let prog = hammock_program(elems, iters);
    println!("zero%   base IPC   ci IPC   speedup   mispredict%   reuse%");
    println!("----------------------------------------------------------");
    for zero_percent in [1, 10, 25, 50] {
        let mem = data(elems, zero_percent, 0xDEAD_BEEF);
        let mut ipc = [0.0f64; 2];
        let mut mr = 0.0;
        let mut reuse = 0.0;
        for (i, mode) in [Mode::WideBus, Mode::Ci].into_iter().enumerate() {
            let cfg = SimConfig::paper_baseline()
                .with_mode(mode)
                .with_regs(RegFileSize::Finite(512))
                .with_max_insts(u64::MAX >> 1);
            let mut pipe = Pipeline::new(&prog, mem.clone(), cfg);
            assert_eq!(pipe.run(), RunExit::Halted);
            ipc[i] = pipe.stats.ipc();
            if i == 1 {
                mr = pipe.stats.mispredict_rate();
                reuse = pipe.stats.reuse_fraction();
            }
        }
        println!(
            "{:4}%     {:.3}     {:.3}    {:+5.1}%        {:4.1}%    {:4.1}%",
            zero_percent,
            ipc[0],
            ipc[1],
            (ipc[1] / ipc[0] - 1.0) * 100.0,
            mr * 100.0,
            reuse * 100.0,
        );
    }
    println!("\nthe harder the branch, the more the mechanism recovers.");
}
