//! Design-space walk — explore the mechanism's main knobs on one
//! benchmark: replicas per instruction, register-file size, and the
//! speculative data memory, printing a compact design-space table.
//!
//! ```sh
//! cargo run --release --example design_space [benchmark]
//! ```

use cfir::prelude::*;

fn run(w: &Workload, cfg: SimConfig) -> SimStats {
    let mut pipe = Pipeline::new(&w.prog, w.mem.clone(), cfg);
    pipe.run();
    pipe.stats.clone()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crafty".into());
    let insts = 80_000u64;
    let w = by_name(&name, WorkloadSpec::default()).expect("unknown benchmark");

    println!("benchmark: {name} ({insts} committed instructions per point)\n");

    // 1. Replicas per vectorized instruction (Figure 11's knob).
    println!("replicas   IPC     reuse%   replicas-executed");
    for r in [1u8, 2, 4, 8] {
        let cfg = SimConfig::paper_baseline()
            .with_mode(Mode::Ci)
            .with_regs(RegFileSize::Finite(512))
            .with_replicas(r)
            .with_max_insts(insts);
        let s = run(&w, cfg);
        println!(
            "{:8} {:7.3} {:8.1} {:>14}",
            r,
            s.ipc(),
            s.reuse_fraction() * 100.0,
            s.replicas_executed
        );
    }

    // 2. Register-file size (Figures 9/11's x-axis).
    println!("\nregisters  base IPC  ci IPC   gain");
    for regs in [128u32, 256, 512, 768] {
        let base = run(
            &w,
            SimConfig::paper_baseline()
                .with_mode(Mode::WideBus)
                .with_regs(RegFileSize::Finite(regs))
                .with_max_insts(insts),
        );
        let ci = run(
            &w,
            SimConfig::paper_baseline()
                .with_mode(Mode::Ci)
                .with_regs(RegFileSize::Finite(regs))
                .with_max_insts(insts),
        );
        println!(
            "{:9} {:9.3} {:7.3} {:+6.1}%",
            regs,
            base.ipc(),
            ci.ipc(),
            (ci.ipc() / base.ipc() - 1.0) * 100.0
        );
    }

    // 3. Speculative data memory instead of scalar registers (§2.4.6).
    println!("\nspec-mem   IPC     (256-register file, ci-h-N of Figure 13)");
    for positions in [128usize, 256, 512, 768] {
        let mut cfg = SimConfig::paper_baseline()
            .with_mode(Mode::Ci)
            .with_regs(RegFileSize::Finite(256))
            .with_max_insts(insts);
        cfg.mech = cfir::core::MechConfig::paper_with_specmem(positions);
        let s = run(&w, cfg);
        println!("{:8} {:7.3}", positions, s.ipc());
    }
}
