//! Quickstart: assemble a tiny program, run it on the golden-model
//! emulator and on the out-of-order core in two machine modes, and
//! print what the control-independence mechanism did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cfir::prelude::*;

fn main() {
    // The paper's Figure 1: count the zero and non-zero elements of an
    // array while accumulating its sum. The `beq` is data-dependent and
    // hard to predict; everything from `ip:` onward is control-flow
    // independent of it.
    let prog = cfir::isa::assemble(
        "figure-1",
        r#"
            li   r1, 0          ; index (bytes)
            li   r2, 0          ; non-zero count
            li   r3, 0          ; zero count
            li   r4, 0          ; sum
            li   r5, 65536      ; &a
            li   r6, 65536      ; 8192 elements * 8 bytes
        loop:
            add  r7, r5, r1
            ld   r8, 0(r7)      ; strided load of a[i]
            beq  r8, r0, else_  ; hard-to-predict hammock branch
            addi r2, r2, 1      ; then: non-zero count
            jmp  ip
        else_:
            addi r3, r3, 1      ; else: zero count
        ip:
            add  r4, r4, r8     ; control-independent: same either way
            addi r1, r1, 8
            blt  r1, r6, loop
            halt
        "#,
    )
    .expect("assembles");

    // Fill the array with a pseudo-random 0/1 pattern.
    let mut mem = MemImage::new();
    let n = 8192u64;
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut expected_sum = 0u64;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let v = x & 1;
        expected_sum += v;
        mem.write(65536 + i * 8, v);
    }

    // Golden model first: architectural truth.
    let mut emu = Emulator::new(mem.clone());
    emu.run(&prog, u64::MAX >> 1);
    println!(
        "emulator:  sum={} zeros={} nonzeros={}",
        emu.reg(4),
        emu.reg(3),
        emu.reg(2)
    );
    assert_eq!(emu.reg(4), expected_sum);

    // Now the cycle-level core, baseline vs the paper's mechanism.
    for mode in [Mode::Scalar, Mode::WideBus, Mode::Ci] {
        let cfg = SimConfig::paper_baseline()
            .with_mode(mode)
            .with_regs(RegFileSize::Finite(512))
            .with_max_insts(u64::MAX >> 1);
        let mut pipe = Pipeline::new(&prog, mem.clone(), cfg);
        let exit = pipe.run();
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(
            pipe.arch_reg(4),
            expected_sum,
            "same architecture in {mode:?}"
        );
        let s = &pipe.stats;
        println!(
            "{:6}  IPC {:.3}  cycles {:7}  mispredict {:4.1}%  reuse {:4.1}%  replicas {}",
            mode.label(),
            s.ipc(),
            s.cycles,
            s.mispredict_rate() * 100.0,
            s.reuse_fraction() * 100.0,
            s.replicas_executed,
        );
    }
    println!("\nthe `ci` row runs the same program, same results — fewer cycles.");
}
